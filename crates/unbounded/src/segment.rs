//! Ring segments and the segment cache of the unbounded queue.
//!
//! A [`Segment`] wraps one bounded [`WcqQueue`] together with the bookkeeping
//! the outer linked list needs:
//!
//! * a **credit counter** (`state`) that makes "is there room?" and "has the
//!   segment been closed?" one atomic decision — the LCRQ/LSCQ closing idea
//!   lifted to the data-queue layer, since wCQ's own enqueue cannot be told
//!   to fail permanently;
//! * an **in-flight counter** so dequeuers can wait out enqueuers that
//!   acquired a credit before the segment closed (those enqueues *will* land
//!   and must not be lost when the outer head advances past the segment);
//! * the outer `next` link;
//! * a back-pointer to the owning queue's [`SegmentCache`] so the hazard
//!   domain can *recycle* a drained segment instead of freeing it.
//!
//! ## Why credits make closing sound
//!
//! `state` starts at the segment capacity.  An enqueuer first increments
//! `inflight`, then does `state.fetch_sub(1)`: a positive pre-value is a
//! credit guaranteeing the inner free-index ring holds a slot for it (the
//! classic semaphore invariant — credits never exceed free slots, and free
//! slots are only taken by credit holders).  Closing subtracts a huge
//! constant, so every later claim observes a non-positive value and fails —
//! no check-then-act race, exactly like LCRQ's tail `CLOSED` bit.
//!
//! A dequeuer may advance the outer head past a segment only after it
//! observes, in order: a non-null `next` (segments are closed before they are
//! linked past), `inflight == 0` (every credit holder has finished its inner
//! enqueue), and one more empty inner dequeue.  At that point the segment is
//! permanently empty: no credit can be granted any more, and everything that
//! was in flight is visible.

use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use wcq_atomics::CachePadded;
use wcq_core::adaptive::PatienceCell;
use wcq_core::metrics::CounterSet;
use wcq_core::wcq::{CellFamily, WcqConfig, WcqQueue};

/// Subtracted from `state` when a segment closes.  Far larger than any
/// capacity or thread count, so the counter stays negative against every
/// transient `±1` from concurrent claims and credit returns.
const CLOSE_DELTA: i64 = 1 << 40;

/// One ring segment of the unbounded queue.
pub(crate) struct Segment<T, F: CellFamily> {
    queue: WcqQueue<T, F>,
    /// Outer list link; doubles as the cache free-list link via reset.
    pub(crate) next: AtomicPtr<Segment<T, F>>,
    /// Free credits; `<= 0` means full or closed (see module docs).
    state: CachePadded<AtomicI64>,
    /// Close-once latch so `CLOSE_DELTA` is subtracted exactly once.
    closed: AtomicBool,
    /// Enqueuers currently between their `inflight` increment and decrement.
    inflight: CachePadded<AtomicUsize>,
    /// The owning queue's cache, for hazard-domain recycling.
    pub(crate) cache: *const SegmentCache<T, F>,
    capacity: i64,
}

impl<T, F: CellFamily> Segment<T, F> {
    pub(crate) fn new(
        order: u32,
        max_threads: usize,
        config: WcqConfig,
        cache: *const SegmentCache<T, F>,
        counters: Option<Arc<CounterSet>>,
    ) -> Self {
        let queue = WcqQueue::with_config_counters(order, max_threads, config, counters);
        let capacity = queue.capacity() as i64;
        Self {
            queue,
            next: AtomicPtr::new(ptr::null_mut()),
            state: CachePadded::new(AtomicI64::new(capacity)),
            closed: AtomicBool::new(false),
            inflight: CachePadded::new(AtomicUsize::new(0)),
            cache,
            capacity,
        }
    }

    /// Claims record slot `tid` of the inner rings so bound operations can
    /// skip the per-operation acquire/release round trip.  The outer `tid` is
    /// exclusive to one handle, so this only fails if the caller violates the
    /// bind/unbind pairing.
    pub(crate) fn bind(&self, tid: usize) -> bool {
        self.queue.try_acquire_slot(tid)
    }

    /// Releases a binding made by [`Segment::bind`].
    ///
    /// # Safety
    /// Pairs with exactly one successful `bind(tid)` by this caller.
    pub(crate) unsafe fn unbind(&self, tid: usize) {
        // SAFETY: per the function contract.
        unsafe { self.queue.release_slot(tid) };
    }

    /// Attempts to enqueue `value` under the credit discipline, assuming the
    /// caller is already bound to this segment.  `Err` means the segment is
    /// full or closed and will never accept this value.
    ///
    /// `pace` is the calling handle's patience cell, forwarded to the inner
    /// ring operations (see `wcq_core::adaptive`).
    ///
    /// # Safety
    /// The caller must hold a live [`Segment::bind`] on `tid`.
    pub(crate) unsafe fn try_enqueue_bound(
        &self,
        tid: usize,
        value: T,
        pace: &PatienceCell,
    ) -> Result<(), T> {
        self.inflight.fetch_add(1, SeqCst);
        let credit = self.state.fetch_sub(1, SeqCst);
        if credit <= 0 {
            self.state.fetch_add(1, SeqCst);
            self.inflight.fetch_sub(1, SeqCst);
            return Err(value);
        }
        // SAFETY: bound per the function contract.
        let res = unsafe { self.queue.enqueue_at(tid, value, pace) };
        if res.is_err() {
            // A credit guarantees a free inner slot, so this branch is
            // unreachable; restore the credit if the invariant ever breaks.
            debug_assert!(false, "credit-holding enqueue found the inner ring full");
            self.state.fetch_add(1, SeqCst);
        }
        self.inflight.fetch_sub(1, SeqCst);
        res
    }

    /// Batch counterpart of [`Segment::try_enqueue_bound`]: claims up to
    /// `values.len()` credits with **one** `fetch_sub`, feeds the granted
    /// prefix to the inner batch enqueue, and returns the number accepted
    /// (drained from the front of `values`).  Returning `0` means the segment
    /// is full or closed and will never accept anything.
    ///
    /// Credits over-claimed by the single subtraction are returned before the
    /// inner enqueue runs, so the semaphore invariant (credits never exceed
    /// free inner slots) holds throughout.  The claim is clamped to the
    /// segment capacity so an oversized batch cannot push `state` anywhere
    /// near the [`CLOSE_DELTA`] sentinel range.
    ///
    /// The inner batch enqueue's free-slot claim is racily partial: under
    /// contention its run of free-ring tickets can miss slots that the held
    /// credits guarantee exist (holes in the claimed run).  The shortfall is
    /// claimed element-by-element through [`WcqQueue::enqueue_at`], whose
    /// free-ring dequeue is authoritative, so every granted credit is always
    /// converted into an accepted element.
    ///
    /// # Safety
    /// The caller must hold a live [`Segment::bind`] on `tid`.
    pub(crate) unsafe fn try_enqueue_many_bound(
        &self,
        tid: usize,
        values: &mut VecDeque<T>,
        pace: &PatienceCell,
    ) -> usize {
        if values.is_empty() {
            return 0;
        }
        let want = (values.len() as i64).min(self.capacity);
        self.inflight.fetch_add(1, SeqCst);
        let credit = self.state.fetch_sub(want, SeqCst);
        let granted = credit.clamp(0, want);
        if granted < want {
            self.state.fetch_add(want - granted, SeqCst);
        }
        if granted == 0 {
            self.inflight.fetch_sub(1, SeqCst);
            return 0;
        }
        let mut accepted = if granted as usize == values.len() {
            // SAFETY: bound per the function contract.
            unsafe { self.queue.enqueue_many_at(tid, values, pace) }
        } else {
            // Only the granted prefix may touch the inner ring: feeding the
            // whole buffer would let the inner enqueue consume free slots
            // that belong to other credit holders.
            let mut run: VecDeque<T> = values.drain(..granted as usize).collect();
            // SAFETY: bound per the function contract.
            let accepted = unsafe { self.queue.enqueue_many_at(tid, &mut run, pace) };
            while let Some(value) = run.pop_back() {
                values.push_front(value);
            }
            accepted
        };
        // Convert the racy batch shortfall into accepted elements one
        // credit-guaranteed slot at a time (see the doc comment above).
        while (accepted as i64) < granted {
            let value = values.pop_front().expect("one element per granted credit");
            // SAFETY: bound per the function contract.
            match unsafe { self.queue.enqueue_at(tid, value, pace) } {
                Ok(()) => accepted += 1,
                Err(value) => {
                    // The credit invariant rules this out; restore the value
                    // and the unused credits rather than losing either.
                    values.push_front(value);
                    self.state.fetch_add(granted - accepted as i64, SeqCst);
                    break;
                }
            }
        }
        self.inflight.fetch_sub(1, SeqCst);
        accepted
    }

    /// Attempts to dequeue assuming the caller is already bound; `None` means
    /// the inner ring was observed empty.
    ///
    /// # Safety
    /// The caller must hold a live [`Segment::bind`] on `tid`.
    pub(crate) unsafe fn try_dequeue_bound(&self, tid: usize, pace: &PatienceCell) -> Option<T> {
        // SAFETY: bound per the function contract.
        let v = unsafe { self.queue.dequeue_at(tid, pace) };
        if v.is_some() {
            self.state.fetch_add(1, SeqCst);
        }
        v
    }

    /// Batch counterpart of [`Segment::try_dequeue_bound`]: pulls up to `max`
    /// values with one inner batch dequeue and returns one credit per value
    /// with a **single** `fetch_add`.
    ///
    /// # Safety
    /// The caller must hold a live [`Segment::bind`] on `tid`.
    pub(crate) unsafe fn try_dequeue_many_bound(
        &self,
        tid: usize,
        out: &mut Vec<T>,
        max: usize,
        pace: &PatienceCell,
    ) -> usize {
        // SAFETY: bound per the function contract.
        let got = unsafe { self.queue.dequeue_many_at(tid, out, max, pace) };
        if got > 0 {
            self.state.fetch_add(got as i64, SeqCst);
        }
        got
    }

    /// One-shot enqueue: bind, operate, unbind.  Used off the hot path (the
    /// fresh-segment preload), where binding churn does not matter — a fresh
    /// fixed patience cell per call is fine for the same reason.
    pub(crate) fn try_enqueue(&self, tid: usize, value: T) -> Result<(), T> {
        assert!(self.bind(tid), "outer tid is exclusive to one operation");
        let pace = PatienceCell::from_config(self.queue.config());
        // SAFETY: bound above; unbound immediately after.
        let res = unsafe { self.try_enqueue_bound(tid, value, &pace) };
        unsafe { self.unbind(tid) };
        res
    }

    /// One-shot dequeue counterpart of [`Segment::try_enqueue`] (used when a
    /// lost link race takes the pre-loaded value back out).
    pub(crate) fn try_dequeue(&self, tid: usize) -> Option<T> {
        assert!(self.bind(tid), "outer tid is exclusive to one operation");
        let pace = PatienceCell::from_config(self.queue.config());
        // SAFETY: bound above; unbound immediately after.
        let v = unsafe { self.try_dequeue_bound(tid, &pace) };
        unsafe { self.unbind(tid) };
        v
    }

    /// Permanently rejects future enqueue credits (idempotent).
    pub(crate) fn close(&self) {
        if !self.closed.swap(true, SeqCst) {
            self.state.fetch_sub(CLOSE_DELTA, SeqCst);
        }
    }

    /// Number of enqueuers currently inside [`Segment::try_enqueue`].
    pub(crate) fn inflight(&self) -> usize {
        self.inflight.load(SeqCst)
    }

    /// Resets the outer bookkeeping of a drained, unreachable segment so it
    /// can serve as a fresh tail.  The inner rings need no reset: a drained
    /// wCQ is simply an empty wCQ whose cycle counters have advanced.
    pub(crate) fn reopen(&self) {
        self.next.store(ptr::null_mut(), SeqCst);
        self.inflight.store(0, SeqCst);
        self.state.store(self.capacity, SeqCst);
        self.closed.store(false, SeqCst);
    }

    /// Bytes occupied by this segment (struct + inner rings and data array).
    pub(crate) fn footprint(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<WcqQueue<T, F>>()
            + self.queue.memory_footprint()
    }
}

/// The reclaimer installed with [`wcq_reclaim::HazardHandle::retire_with`]:
/// once no thread protects the segment, hand it back to the owning queue's
/// cache (or free it if the cache is full).
///
/// # Safety
/// `p` must point to a `Segment<T, F>` produced by `Box::into_raw` that has
/// been unlinked from the queue; the hazard domain guarantees exclusive
/// ownership when this runs, and the cache outlives the domain (field order
/// in `UnboundedWcq`).
pub(crate) unsafe fn recycle_segment<T, F: CellFamily>(p: *mut u8) {
    let seg = p.cast::<Segment<T, F>>();
    // SAFETY: per the function contract the segment is exclusively owned and
    // its cache back-pointer is still alive.
    let cache = unsafe { (*seg).cache };
    unsafe { SegmentCache::give_back(cache, seg) };
}

/// A bounded free-list of drained segments.
///
/// Steady-state traffic that repeatedly grows and shrinks by a few segments
/// allocates nothing: retired segments come back through
/// [`recycle_segment`] and are reused by the next append.  The store is a
/// fixed array of `AtomicPtr` slots (null = empty): `take` swaps slots to
/// null, `give_back` CASes null to the segment pointer.  Each segment lives
/// in at most one slot and every insertion/removal is one successful atomic
/// exchange on that slot, so there is no ABA hazard to protect against —
/// unlike a Treiber stack — and no lock, which keeps the (blocking-freedom)
/// lint's `Mutex` ban satisfiable for the whole crate.
pub(crate) struct SegmentCache<T, F: CellFamily> {
    slots: Box<[AtomicPtr<Segment<T, F>>]>,
    /// Segments accepted back into the cache (statistics).
    recycled: AtomicUsize,
    /// Appends served from the cache instead of the allocator (statistics).
    reused: AtomicUsize,
    /// [`SegmentCache::take`] calls that found a segment (statistics).
    hits: AtomicUsize,
    /// [`SegmentCache::take`] calls that found the cache empty and sent the
    /// caller to the allocator (statistics).
    misses: AtomicUsize,
}

// SAFETY: the raw pointers are exclusively owned by the cache while stored
// (a segment enters a slot through exactly one successful CAS and leaves it
// through exactly one successful swap); all slot mutation is atomic.
unsafe impl<T: Send, F: CellFamily> Send for SegmentCache<T, F> {}
unsafe impl<T: Send, F: CellFamily> Sync for SegmentCache<T, F> {}

impl<T, F: CellFamily> SegmentCache<T, F> {
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            // Pre-allocate every slot so a steady-state `give_back` never
            // allocates.
            slots: (0..limit)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            recycled: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Takes a reopened segment from the cache, if any.  The reuse statistic
    /// is *not* bumped here: a taken segment only counts as reused once its
    /// append wins the link race (see [`SegmentCache::note_reused`]) —
    /// otherwise a lost race that hands the segment straight back would
    /// overstate cache effectiveness.  Hit/miss counters *are* bumped here:
    /// they measure how often the cache could answer at all, which is the
    /// steady-state-allocates-nothing property the memory tests assert.
    pub(crate) fn take(&self) -> Option<*mut Segment<T, F>> {
        for slot in self.slots.iter() {
            let seg = slot.swap(ptr::null_mut(), SeqCst);
            if !seg.is_null() {
                self.hits.fetch_add(1, SeqCst);
                return Some(seg);
            }
        }
        self.misses.fetch_add(1, SeqCst);
        None
    }

    /// Records that a cache-served segment was actually linked into a queue.
    pub(crate) fn note_reused(&self) {
        self.reused.fetch_add(1, SeqCst);
    }

    /// Accepts an exclusively owned, unreachable segment back (or frees it
    /// when the cache is at its limit).
    ///
    /// # Safety
    /// `cache` must be live and `seg` exclusively owned by the caller.
    pub(crate) unsafe fn give_back(cache: *const Self, seg: *mut Segment<T, F>) {
        // SAFETY: per the function contract.
        let this = unsafe { &*cache };
        // SAFETY: exclusive ownership allows the (atomic-only) reset.
        unsafe { (*seg).reopen() };
        for slot in this.slots.iter() {
            if slot
                .compare_exchange(ptr::null_mut(), seg, SeqCst, SeqCst)
                .is_ok()
            {
                this.recycled.fetch_add(1, SeqCst);
                return;
            }
        }
        // Every slot occupied: the cache is at its limit.
        // SAFETY: exclusively owned and produced by `Box::into_raw`.
        drop(unsafe { Box::from_raw(seg) });
    }

    /// Number of cached segments (racy snapshot; statistics and tests only).
    pub(crate) fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| !slot.load(SeqCst).is_null())
            .count()
    }

    pub(crate) fn recycled_total(&self) -> usize {
        self.recycled.load(SeqCst)
    }

    pub(crate) fn reused_total(&self) -> usize {
        self.reused.load(SeqCst)
    }

    pub(crate) fn hits_total(&self) -> usize {
        self.hits.load(SeqCst)
    }

    pub(crate) fn misses_total(&self) -> usize {
        self.misses.load(SeqCst)
    }
}

impl<T, F: CellFamily> Drop for SegmentCache<T, F> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let seg = *slot.get_mut();
            if !seg.is_null() {
                // SAFETY: cached segments are exclusively owned by the cache.
                drop(unsafe { Box::from_raw(seg) });
            }
        }
    }
}
