//! # wcq-unbounded
//!
//! **wLSCQ** — an unbounded MPMC FIFO queue built from linked wCQ ring
//! segments, the paper's §2.3 recipe ("SCQ rings can be linked into LSCQ to
//! make the queue unbounded") applied to the *wait-free* wCQ ring.
//!
//! ## Architecture
//!
//! ```text
//!  head ──▶ [Segment] ──▶ [Segment] ──▶ [Segment] ◀── tail
//!            wCQ ring      wCQ ring      wCQ ring
//!            (drained:     (partially    (accepting
//!             retire via    full)         enqueues)
//!             hazard ptrs)
//!                 │                           ▲
//!                 ▼                           │
//!            SegmentCache ────────────────────┘  (bounded reuse free-list)
//! ```
//!
//! * Every segment is a bounded, wait-free [`wcq_core::wcq::WcqQueue`];
//!   operations inside a segment inherit its wait-freedom and bounded memory.
//! * When the tail segment fills up it is **closed** (a credit counter makes
//!   full/closed one atomic decision) and a fresh segment — pre-loaded with
//!   the element that triggered the append, as in LCRQ — is linked behind it.
//! * Drained segments are unlinked by dequeuers and **retired** through a
//!   [`wcq_reclaim::HazardDomain`]; once unprotected they are **recycled**
//!   into a bounded [`DEFAULT_SEGMENT_CACHE`]-sized free-list, so steady
//!   traffic performs no per-operation allocation.
//! * The whole queue is generic over the paper's two hardware models
//!   ([`wcq_core::wcq::NativeFamily`], [`wcq_core::wcq::LlscFamily`]).
//! * For high thread counts, [`ShardedWcq`] puts `N` independent wLSCQ
//!   shards behind the same facade with a pluggable [`ShardPolicy`]
//!   (round-robin / least-loaded / pinned enqueue routing) and a
//!   home-shard-first, work-stealing dequeue — breaking the single head/tail
//!   hot spots while keeping every per-shard guarantee (see [`shard`'s
//!   module docs](ShardedWcq) for the order/throughput trade).
//!
//! ## Example
//!
//! ```
//! use wcq_unbounded::UnboundedWcq;
//!
//! // 2^4-element segments, up to 4 registered threads, unbounded overall.
//! let q: UnboundedWcq<u64> = UnboundedWcq::new(4, 4);
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut h = q.register().unwrap();
//!         for i in 0..1000 {
//!             h.enqueue(i); // never fails: the queue grows by segments
//!         }
//!     });
//!     s.spawn(|| {
//!         let mut h = q.register().unwrap();
//!         let mut got = 0;
//!         while got < 1000 {
//!             if h.dequeue().is_some() {
//!                 got += 1;
//!             }
//!         }
//!     });
//! });
//! assert_eq!(q.segments_live(), 1); // drained segments were retired
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod queue;
mod segment;
mod shard;

pub use queue::{
    CacheStats, SegmentStats, UnboundedWcq, UnboundedWcqHandle, DEFAULT_SEGMENT_CACHE,
};
pub use shard::{ShardPolicy, ShardedWcq, ShardedWcqHandle};
