//! Software emulation of weak LL/SC reservation granules.
//!
//! Section 4 of the wCQ paper shows how to implement the algorithm on
//! architectures that lack a double-width CAS (PowerPC, MIPS) but provide
//! load-linked / store-conditional with a reservation granule larger than one
//! word: both halves of an entry are placed in the same granule, `LL` is
//! performed on the half being modified, the other half is read with a plain
//! load in between, and the `SC` only succeeds if the *whole granule* was left
//! untouched (Figure 9, `CAS2_Value` / `CAS2_Note`).
//!
//! Real LL/SC hardware is not available in this reproduction environment
//! (DESIGN.md, substitution table), so this module emulates the semantics in
//! software:
//!
//! * a [`Granule`] holds two 64-bit words and a version counter,
//! * [`Granule::load_linked`] returns the word plus a [`Reservation`]
//!   capturing the version,
//! * [`Granule::store_conditional`] succeeds only if no store to *either*
//!   word of the granule happened since the reservation was taken, and
//! * spurious failures can be injected (real weak LL/SC may fail spuriously,
//!   e.g. on interrupts) via [`set_spurious_failure_rate`], which the failure
//!   injection tests use to exercise the retry paths.
//!
//! The emulation is linearizable but, being built on a version CAS, it is not
//! itself wait-free; it exists to exercise the identical algorithmic code path
//! that the paper adds for LL/SC machines and to regenerate the Figure 12
//! configuration.

use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::cell::Cell;

/// Yield point for the `wcq-check` schedule explorer (no-op unless the
/// `checkpoint` feature is enabled *and* a hook is installed).  Placed at the
/// *entry* of each granule operation, never inside the version-odd window, so
/// a suspended thread can never wedge the granule for others.
#[inline(always)]
fn checkpoint(op: &'static str) {
    #[cfg(feature = "checkpoint")]
    crate::checkpoint::hit(op);
    #[cfg(not(feature = "checkpoint"))]
    let _ = op;
}

/// Global spurious-failure rate for `store_conditional`, expressed as
/// failures per 2^32 attempts (0 = never fail spuriously).
static SPURIOUS_RATE: AtomicU32 = AtomicU32::new(0);

/// Process-global tally of injected spurious SC failures (observability; the
/// metrics layer folds this into its snapshots).  Only bumped when injection
/// is enabled, so the rate-0 fast path stays a single load + branch.
static SPURIOUS_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Total spurious store-conditional failures injected since process start.
pub fn spurious_sc_failures() -> u64 {
    // relaxed: monotone observability counter; readers only need an
    // eventually-consistent tally, never ordering against other memory.
    SPURIOUS_FAILURES.load(Ordering::Relaxed)
}

/// Sets the probability (0.0..=1.0) that any `store_conditional` fails even
/// though the reservation is still valid, emulating weak LL/SC.
pub fn set_spurious_failure_rate(p: f64) {
    let clamped = p.clamp(0.0, 1.0);
    let scaled = (clamped * u32::MAX as f64) as u32;
    SPURIOUS_RATE.store(scaled, Ordering::SeqCst);
}

/// Returns the currently configured spurious failure probability.
pub fn spurious_failure_rate() -> f64 {
    SPURIOUS_RATE.load(Ordering::SeqCst) as f64 / u32::MAX as f64
}

thread_local! {
    static RNG_STATE: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
}

fn spurious_failure() -> bool {
    // relaxed: the rate is test-configuration state; a stale read only delays
    // when injection kicks in and has no bearing on granule correctness.
    let rate = SPURIOUS_RATE.load(Ordering::Relaxed);
    if rate == 0 {
        return false;
    }
    RNG_STATE.with(|s| {
        // xorshift64*: cheap, deterministic per thread, good enough for
        // failure injection.
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        let fail = (x as u32) < rate;
        if fail {
            // relaxed: observability tally only (see spurious_sc_failures).
            SPURIOUS_FAILURES.fetch_add(1, Ordering::Relaxed);
        }
        fail
    })
}

/// A reservation handle returned by [`Granule::load_linked`].
///
/// The reservation is only meaningful for the granule it was taken on; using
/// it with another granule makes the corresponding SC fail.
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    version: u64,
    granule: usize,
}

/// An emulated LL/SC reservation granule holding two 64-bit words.
///
/// The two words model a wCQ entry's `(Value, Note)` pair sharing one
/// reservation granule (one L1 line on PowerPC).  Any successful store —
/// conditional or plain — to either word invalidates all outstanding
/// reservations on the granule, exactly the "false sharing" behaviour §4
/// relies on.
#[repr(C, align(16))]
#[derive(Debug)]
pub struct Granule {
    /// Even = stable, odd = a store is in progress.
    version: AtomicU64,
    words: [AtomicU64; 2],
}

impl Default for Granule {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl Granule {
    /// Creates a granule initialized to `(w0, w1)`.
    pub const fn new(w0: u64, w1: u64) -> Self {
        Self {
            version: AtomicU64::new(0),
            words: [AtomicU64::new(w0), AtomicU64::new(w1)],
        }
    }

    #[inline]
    fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Load-linked: atomically reads word `idx` and takes a reservation on the
    /// whole granule.
    #[inline]
    pub fn load_linked(&self, idx: usize) -> (u64, Reservation) {
        checkpoint("granule.ll");
        loop {
            let v = self.version.load(Ordering::SeqCst);
            if v % 2 == 1 {
                core::hint::spin_loop();
                continue;
            }
            let word = self.words[idx].load(Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                return (
                    word,
                    Reservation {
                        version: v,
                        granule: self.id(),
                    },
                );
            }
        }
    }

    /// Plain atomic load of word `idx` (the read the paper performs *between*
    /// LL and SC on the other word).
    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        checkpoint("granule.load");
        self.words[idx].load(Ordering::SeqCst)
    }

    /// Consistent snapshot of both words (used to model a double-width load on
    /// LL/SC architectures; only needed off the critical path).
    pub fn snapshot(&self) -> (u64, u64) {
        checkpoint("granule.snapshot");
        loop {
            let v = self.version.load(Ordering::SeqCst);
            if v % 2 == 1 {
                core::hint::spin_loop();
                continue;
            }
            let w0 = self.words[0].load(Ordering::SeqCst);
            let w1 = self.words[1].load(Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                return (w0, w1);
            }
        }
    }

    /// Store-conditional: writes `value` into word `idx` iff no store to the
    /// granule happened since `res` was taken (and no spurious failure was
    /// injected).  Returns `true` on success.
    #[inline]
    pub fn store_conditional(&self, idx: usize, value: u64, res: Reservation) -> bool {
        checkpoint("granule.sc");
        if res.granule != self.id() {
            return false;
        }
        if spurious_failure() {
            return false;
        }
        // Acquire the granule by moving the version from the reserved (even)
        // value to odd; any intervening store has already advanced the
        // version, so the CAS fails and the SC correctly reports failure.
        if self
            .version
            .compare_exchange(
                res.version,
                res.version + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            return false;
        }
        self.words[idx].store(value, Ordering::SeqCst);
        self.version.store(res.version + 2, Ordering::SeqCst);
        true
    }

    /// Unconditional store (initialisation / fast-path writes); invalidates
    /// all outstanding reservations on the granule.
    pub fn store(&self, idx: usize, value: u64) {
        checkpoint("granule.store");
        loop {
            let v = self.version.load(Ordering::SeqCst);
            if v % 2 == 1 {
                core::hint::spin_loop();
                continue;
            }
            if self
                .version
                .compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.words[idx].store(value, Ordering::SeqCst);
                self.version.store(v + 2, Ordering::SeqCst);
                return;
            }
        }
    }

    /// Emulated single-word CAS on word `idx`, built from an LL/SC pair
    /// exactly as a PowerPC `cmpxchg` loop would be.  Fails (possibly
    /// spuriously) when the granule changed.
    pub fn cas_word(&self, idx: usize, expected: u64, new: u64) -> bool {
        let (cur, res) = self.load_linked(idx);
        if cur != expected {
            return false;
        }
        self.store_conditional(idx, new, res)
    }

    /// Emulated fetch-and-add on word `idx` via an LL/SC retry loop (PowerPC
    /// has no native F&A; the paper notes wCQ still works, merely without the
    /// fast-path F&A advantage).  Returns the previous value.
    pub fn fetch_add_word(&self, idx: usize, delta: u64) -> u64 {
        loop {
            let (cur, res) = self.load_linked(idx);
            if self.store_conditional(idx, cur.wrapping_add(delta), res) {
                return cur;
            }
        }
    }

    /// Emulated fetch-OR on word `idx` via an LL/SC retry loop.
    pub fn fetch_or_word(&self, idx: usize, bits: u64) -> u64 {
        loop {
            let (cur, res) = self.load_linked(idx);
            if self.store_conditional(idx, cur | bits, res) {
                return cur;
            }
        }
    }

    /// The §4 `CAS2_Value` construction (Figure 9): LL the low word, plain-load
    /// the high word, compare the pair, SC the low word.
    pub fn cas2_word0(&self, expected: (u64, u64), new_w0: u64) -> bool {
        let (w0, res) = self.load_linked(0);
        let w1 = self.load(1);
        if (w0, w1) != expected {
            return false;
        }
        self.store_conditional(0, new_w0, res)
    }

    /// The §4 `CAS2_Note` construction (Figure 9): LL the high word, plain-load
    /// the low word, compare the pair, SC the high word.
    pub fn cas2_word1(&self, expected: (u64, u64), new_w1: u64) -> bool {
        let (w1, res) = self.load_linked(1);
        let w0 = self.load(0);
        if (w0, w1) != expected {
            return false;
        }
        self.store_conditional(1, new_w1, res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn no_spurious() {
        set_spurious_failure_rate(0.0);
    }

    #[test]
    fn ll_sc_succeeds_when_undisturbed() {
        no_spurious();
        let g = Granule::new(5, 6);
        let (v, res) = g.load_linked(0);
        assert_eq!(v, 5);
        assert!(g.store_conditional(0, 7, res));
        assert_eq!(g.load(0), 7);
        assert_eq!(g.load(1), 6);
    }

    #[test]
    fn sc_fails_after_store_to_other_word_in_granule() {
        no_spurious();
        let g = Granule::new(1, 2);
        let (_, res) = g.load_linked(0);
        // A store to the *other* word still kills the reservation: that is the
        // reservation-granularity property §4 exploits.
        g.store(1, 99);
        assert!(!g.store_conditional(0, 42, res));
        assert_eq!(g.load(0), 1);
    }

    #[test]
    fn sc_fails_with_foreign_reservation() {
        no_spurious();
        let g1 = Granule::new(0, 0);
        let g2 = Granule::new(0, 0);
        let (_, res1) = g1.load_linked(0);
        assert!(!g2.store_conditional(0, 1, res1));
    }

    #[test]
    fn cas2_word0_checks_both_words() {
        no_spurious();
        let g = Granule::new(10, 20);
        assert!(!g.cas2_word0((10, 21), 11), "stale high word must fail");
        assert!(g.cas2_word0((10, 20), 11));
        assert_eq!(g.snapshot(), (11, 20));
    }

    #[test]
    fn cas2_word1_checks_both_words() {
        no_spurious();
        let g = Granule::new(10, 20);
        assert!(!g.cas2_word1((11, 20), 21), "stale low word must fail");
        assert!(g.cas2_word1((10, 20), 21));
        assert_eq!(g.snapshot(), (10, 21));
    }

    #[test]
    fn fetch_add_word_is_atomic_under_contention() {
        no_spurious();
        const THREADS: usize = 4;
        const OPS: u64 = 10_000;
        let g = Arc::new(Granule::new(0, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        g.fetch_add_word(0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.load(0), THREADS as u64 * OPS);
    }

    #[test]
    fn spurious_failures_are_injected_and_recoverable() {
        set_spurious_failure_rate(0.5);
        let g = Granule::new(0, 0);
        // With 50% spurious failures a bounded retry loop must still complete.
        let mut successes = 0;
        for i in 0..1_000u64 {
            loop {
                let (cur, res) = g.load_linked(0);
                assert_eq!(cur, i);
                if g.store_conditional(0, i + 1, res) {
                    successes += 1;
                    break;
                }
            }
        }
        assert_eq!(successes, 1_000);
        assert_eq!(g.load(0), 1_000);
        set_spurious_failure_rate(0.0);
    }

    #[test]
    fn snapshot_is_consistent_under_writers() {
        no_spurious();
        let g = Arc::new(Granule::new(0, 0));
        let writer = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                for i in 1..=20_000u64 {
                    // Keep both words equal; readers must never observe a
                    // mixed snapshot.
                    g.store(0, i);
                    g.store(1, i);
                }
            })
        };
        let reader = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let (a, b) = g.snapshot();
                    assert!(a == b || a == b + 1 || b == a + 1);
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn rate_set_and_get_roundtrip() {
        set_spurious_failure_rate(0.25);
        assert!((spurious_failure_rate() - 0.25).abs() < 1e-6);
        set_spurious_failure_rate(0.0);
        assert_eq!(spurious_failure_rate(), 0.0);
    }
}
