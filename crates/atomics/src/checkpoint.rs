//! Global checkpoint hook for cooperative schedule exploration.
//!
//! The `wcq-check` crate explores thread interleavings by serialising a run:
//! every participating thread must pass through a *yield point* before each
//! atomic operation so a deterministic scheduler can decide who runs next.
//! For the `CheckedFamily` (native-CAS2 model) the yield points live in the
//! checker itself, but the LL/SC model (`llsc::Granule`) is reached through
//! the ordinary `LlscFamily`/channel builders, so the seam has to live here.
//!
//! The seam is a single process-global function pointer.  It is:
//!
//! * **feature-gated** — only compiled under the `checkpoint` cargo feature,
//!   so production builds don't even pay the null check;
//! * **install-once** — [`install`] refuses to replace a different hook, which
//!   keeps concurrent test binaries well-defined (the hook itself must
//!   dispatch per-thread, which the `wcq-check` scheduler does via a
//!   thread-local registration);
//! * **cheap when idle** — a single `Relaxed` pointer load for unregistered
//!   threads.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Signature of a checkpoint hook: receives a static label naming the atomic
/// operation about to execute (e.g. `"granule.sc"`).
pub type CheckpointFn = fn(&'static str);

// A function pointer stored as usize; 0 means "no hook installed".  A plain
// `AtomicPtr<()>` would need a cast through a fn-pointer anyway, and fn
// pointers are always non-null, so 0 is a safe sentinel.
static HOOK: AtomicUsize = AtomicUsize::new(0);

/// Installs the process-global checkpoint hook.
///
/// Returns `true` if the hook was installed (or was already installed to the
/// same function), `false` if a *different* hook is already present.  The
/// hook can never be uninstalled: schedule explorers install a dispatcher
/// once and route per-thread via thread-locals, so a stale pointer can never
/// be observed.
pub fn install(hook: CheckpointFn) -> bool {
    let raw = hook as usize;
    match HOOK.compare_exchange(0, raw, Ordering::SeqCst, Ordering::SeqCst) {
        Ok(_) => true,
        Err(existing) => existing == raw,
    }
}

/// Invokes the installed hook, if any.  Called at the entry of every
/// instrumented atomic operation.
#[inline]
pub fn hit(op: &'static str) {
    // relaxed: the hook pointer is written once (null -> fn) before any
    // checked run starts; threads that race the installation simply miss a
    // yield point, which only narrows the explored schedule space.
    let raw = HOOK.load(Ordering::Relaxed);
    if raw != 0 {
        // SAFETY: `raw` was produced by casting a valid `CheckpointFn` in
        // `install` and is never mutated afterwards (CAS from 0 only), so
        // casting back yields the same valid function pointer.
        let f: CheckpointFn = unsafe { std::mem::transmute::<usize, CheckpointFn>(raw) };
        f(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static HITS: AtomicU64 = AtomicU64::new(0);

    fn count(_op: &'static str) {
        HITS.fetch_add(1, Ordering::SeqCst);
    }

    fn other(_op: &'static str) {}

    #[test]
    fn install_once_and_hit() {
        hit("noop-before-install");
        assert!(install(count));
        // Same hook again: idempotent.
        assert!(install(count));
        // Different hook: refused.
        assert!(!install(other));
        let before = HITS.load(Ordering::SeqCst);
        hit("op");
        assert_eq!(HITS.load(Ordering::SeqCst), before + 1);
    }
}
