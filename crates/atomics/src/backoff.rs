//! Bounded exponential backoff.
//!
//! The baseline queues (MSQueue, CCQueue, CRTurn) and the harness use a small
//! bounded backoff to reduce CAS contention.  The bound matters for the
//! wait-free analysis: every `snooze` executes a finite number of
//! `spin_loop` hints, so inserting a backoff never turns a bounded loop into
//! an unbounded one.

/// Bounded exponential backoff helper.
///
/// Each call to [`Backoff::snooze`] spins for `2^step` iterations (capped at
/// `2^MAX_SHIFT`) and then doubles the step.  [`Backoff::is_completed`]
/// reports when the cap has been reached so callers can decide to yield or
/// switch strategies (e.g. take the wCQ slow path).
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Maximum exponent: a single snooze never spins more than `2^MAX_SHIFT`
    /// iterations.
    pub const MAX_SHIFT: u32 = 10;

    /// Creates a fresh backoff with zero accumulated delay.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the accumulated delay to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins briefly; the delay grows exponentially up to the cap.
    #[inline]
    pub fn snooze(&mut self) {
        let spins = 1u32 << self.step.min(Self::MAX_SHIFT);
        for _ in 0..spins {
            core::hint::spin_loop();
        }
        if self.step < Self::MAX_SHIFT {
            self.step += 1;
        }
    }

    /// Returns `true` once the exponential delay has reached its cap.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step >= Self::MAX_SHIFT
    }

    /// Spins while the exponential delay is still growing, then yields the
    /// thread once the cap is reached — the standard wait policy for loops
    /// that block on another thread's progress (full/empty channel endpoints,
    /// waiting out an in-flight peer operation).
    #[inline]
    pub fn snooze_or_yield(&mut self) {
        // Under cooperative schedule exploration this wait MUST be a yield
        // point: the loop blocks on another thread's progress, and that
        // thread is parked until the token rotates.  `yield_now` releases
        // the OS core but not the checker's token, so without a checkpoint
        // the waiter spins forever and the run hangs without ever tripping
        // the step bound.
        #[cfg(feature = "checkpoint")]
        crate::checkpoint::hit("backoff.snooze");
        if self.is_completed() {
            std::thread::yield_now();
        } else {
            self.snooze();
        }
    }

    /// Current step (exposed for tests and statistics).
    #[inline]
    pub fn step(&self) -> u32 {
        self.step
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_grows_to_cap() {
        let mut b = Backoff::new();
        assert_eq!(b.step(), 0);
        assert!(!b.is_completed());
        for _ in 0..Backoff::MAX_SHIFT {
            b.snooze();
        }
        assert!(b.is_completed());
        assert_eq!(b.step(), Backoff::MAX_SHIFT);
        // Further snoozes stay capped.
        b.snooze();
        assert_eq!(b.step(), Backoff::MAX_SHIFT);
    }

    #[test]
    fn reset_clears_progress() {
        let mut b = Backoff::new();
        b.snooze();
        b.snooze();
        assert!(b.step() > 0);
        b.reset();
        assert_eq!(b.step(), 0);
        assert!(!b.is_completed());
    }
}
