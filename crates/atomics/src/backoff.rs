//! Bounded exponential backoff.
//!
//! The baseline queues (MSQueue, CCQueue, CRTurn) and the harness use a small
//! bounded backoff to reduce CAS contention.  The bound matters for the
//! wait-free analysis: every `snooze` executes a finite number of
//! `spin_loop` hints, so inserting a backoff never turns a bounded loop into
//! an unbounded one.

/// Bounded exponential backoff helper.
///
/// Each call to [`Backoff::snooze`] spins for `2^step` iterations (capped at
/// `2^MAX_SHIFT`) and then doubles the step.  [`Backoff::is_completed`]
/// reports when the cap has been reached so callers can decide to yield or
/// switch strategies (e.g. take the wCQ slow path).
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    /// This instance's spin-phase cap (`<= MAX_SHIFT`).  Contention-aware
    /// callers lower it so the loop reaches its yield phase sooner instead of
    /// burning long spin bursts nobody will win.
    max_shift: u32,
}

impl Backoff {
    /// Maximum exponent: a single snooze never spins more than `2^MAX_SHIFT`
    /// iterations.
    pub const MAX_SHIFT: u32 = 10;

    /// Creates a fresh backoff with zero accumulated delay.
    pub const fn new() -> Self {
        Self {
            step: 0,
            max_shift: Self::MAX_SHIFT,
        }
    }

    /// Creates a backoff whose spin phase is capped at `2^cap` iterations
    /// (`cap` itself is clamped to [`Backoff::MAX_SHIFT`]).  With a lower
    /// cap, [`Backoff::snooze_or_yield`] starts yielding sooner.
    pub const fn with_max_shift(cap: u32) -> Self {
        Self {
            step: 0,
            max_shift: if cap > Self::MAX_SHIFT {
                Self::MAX_SHIFT
            } else {
                cap
            },
        }
    }

    /// Resets the accumulated delay to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins briefly; the delay grows exponentially up to the cap.
    #[inline]
    pub fn snooze(&mut self) {
        let spins = 1u32 << self.step.min(self.max_shift);
        for _ in 0..spins {
            core::hint::spin_loop();
        }
        if self.step < self.max_shift {
            self.step += 1;
        }
    }

    /// Returns `true` once the exponential delay has reached its cap.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step >= self.max_shift
    }

    /// Spins while the exponential delay is still growing, then yields the
    /// thread once the cap is reached — the standard wait policy for loops
    /// that block on another thread's progress (full/empty channel endpoints,
    /// waiting out an in-flight peer operation).
    #[inline]
    pub fn snooze_or_yield(&mut self) {
        // Under cooperative schedule exploration this wait MUST be a yield
        // point: the loop blocks on another thread's progress, and that
        // thread is parked until the token rotates.  `yield_now` releases
        // the OS core but not the checker's token, so without a checkpoint
        // the waiter spins forever and the run hangs without ever tripping
        // the step bound.
        #[cfg(feature = "checkpoint")]
        crate::checkpoint::hit("backoff.snooze");
        if self.is_completed() {
            std::thread::yield_now();
        } else {
            self.snooze();
        }
    }

    /// Current step (exposed for tests and statistics).
    #[inline]
    pub fn step(&self) -> u32 {
        self.step
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_grows_to_cap() {
        let mut b = Backoff::new();
        assert_eq!(b.step(), 0);
        assert!(!b.is_completed());
        for _ in 0..Backoff::MAX_SHIFT {
            b.snooze();
        }
        assert!(b.is_completed());
        assert_eq!(b.step(), Backoff::MAX_SHIFT);
        // Further snoozes stay capped.
        b.snooze();
        assert_eq!(b.step(), Backoff::MAX_SHIFT);
    }

    #[test]
    fn lowered_cap_completes_sooner() {
        let mut b = Backoff::with_max_shift(3);
        for _ in 0..3 {
            assert!(!b.is_completed());
            b.snooze();
        }
        assert!(b.is_completed());
        assert_eq!(b.step(), 3, "step never grows past the instance cap");
        // The cap itself clamps to MAX_SHIFT.
        let b = Backoff::with_max_shift(99);
        assert!(!b.is_completed());
        let mut b = b;
        for _ in 0..Backoff::MAX_SHIFT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_clears_progress() {
        let mut b = Backoff::new();
        b.snooze();
        b.snooze();
        assert!(b.step() > 0);
        b.reset();
        assert_eq!(b.step(), 0);
        assert!(!b.is_completed());
    }
}
