//! Cache-line padding.
//!
//! Both SCQ and wCQ pad their `Head`, `Tail` and `Threshold` words to separate
//! cache lines (the paper's implementations align to 128 bytes on x86-64 to
//! defeat the adjacent-line prefetcher).  This is a dependency-free stand-in
//! for `crossbeam_utils::CachePadded` with the same alignment choices.

use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to (twice) the length of a cache line.
///
/// 128 bytes on x86-64/AArch64 (spatial prefetcher pulls pairs of lines),
/// 64 bytes elsewhere.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
#[derive(Default, Clone, Copy, PartialEq, Eq)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(core::mem::align_of::<CachePadded<u64>>() >= 64);
        let a = CachePadded::new(1u64);
        assert_eq!(
            (&a as *const _ as usize) % core::mem::align_of::<CachePadded<u64>>(),
            0
        );
    }

    #[test]
    fn two_padded_values_never_share_a_line() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_and_into_inner_roundtrip() {
        let mut p = CachePadded::new(5u32);
        assert_eq!(*p, 5);
        *p = 6;
        assert_eq!(p.into_inner(), 6);
    }
}
