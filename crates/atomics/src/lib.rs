//! # wcq-atomics
//!
//! Low-level atomic substrate for the wCQ reproduction (Nikolaev & Ravindran,
//! SPAA '22).
//!
//! The wCQ algorithm requires *double-width* compare-and-swap (`CAS2` in the
//! paper): every ring entry is a 16-byte `(Value, Note)` pair and the global
//! `Head`/`Tail` references are 16-byte `(counter, help-reference)` pairs.
//! Stable Rust does not expose `core::sync::atomic::AtomicU128`, so this crate
//! provides:
//!
//! * [`AtomicDouble`] — a 16-byte aligned pair of 64-bit words supporting
//!   single-word atomic operations on either half (load/store/F&A/OR/CAS) *and*
//!   a full double-width compare-and-exchange.  On `x86_64` the double-width
//!   operations are implemented with an inline-assembly `lock cmpxchg16b`; on
//!   other targets a striped spin-lock fallback keeps the crate portable (the
//!   fallback preserves linearizability but not wait-freedom, and is intended
//!   for running the test-suite only).
//! * [`AtomicU128`] — a thin `u128`-flavoured convenience wrapper over
//!   [`AtomicDouble`].
//! * [`llsc`] — a software emulation of weak LL/SC reservation granules used to
//!   reproduce the paper's §4 PowerPC/MIPS construction (`CAS2_Value` /
//!   `CAS2_Note`, Figure 9) on commodity hardware.
//! * [`Backoff`] — bounded exponential backoff used by the baseline queues.
//! * [`CachePadded`] — cache-line padding (dependency-free local
//!   implementation; the build environment is offline).
//!
//! All operations in this crate use sequentially-consistent ordering, matching
//! the paper's presentation ("we assume a sequentially consistent memory
//! model"); on x86-64 the extra cost relative to acquire/release is limited to
//! plain stores, and every hot-path operation here is a read-modify-write that
//! is already fully fenced.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backoff;
mod cache_pad;
#[cfg(feature = "checkpoint")]
pub mod checkpoint;
mod double;
pub mod llsc;
mod u128_atomic;

pub use backoff::Backoff;
pub use cache_pad::CachePadded;
pub use double::AtomicDouble;
pub use u128_atomic::AtomicU128;

/// Returns `true` when the double-width operations use the native
/// `lock cmpxchg16b` instruction rather than the portable lock-based fallback.
///
/// The wait-freedom guarantee of the wCQ slow path only holds on the native
/// path; the fallback exists so the library and its tests remain portable.
pub const fn has_native_cas2() -> bool {
    // Miri cannot interpret the inline-assembly cmpxchg16b, so the fallback is
    // used there even on x86_64 (see `double.rs`).
    cfg!(all(target_arch = "x86_64", not(miri)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_cas2_reported_on_x86_64() {
        if cfg!(all(target_arch = "x86_64", not(miri))) {
            assert!(has_native_cas2());
        } else {
            assert!(!has_native_cas2());
        }
    }
}
