//! `u128`-flavoured wrapper over [`AtomicDouble`].
//!
//! Some call sites (notably LCRQ's per-slot `(safe/idx, value)` word and the
//! test-suite) are more naturally expressed over a single 128-bit integer.
//! [`AtomicU128`] provides the familiar `load` / `store` / `compare_exchange` /
//! `fetch_update` surface on top of the same `lock cmpxchg16b` path.

use crate::AtomicDouble;

/// A 128-bit atomic built on [`AtomicDouble`].
///
/// The low 64 bits map to the pair's `lo` word and the high 64 bits to `hi`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicU128 {
    inner: AtomicDouble,
}

#[inline]
fn split(v: u128) -> (u64, u64) {
    (v as u64, (v >> 64) as u64)
}

#[inline]
fn join(lo: u64, hi: u64) -> u128 {
    (lo as u128) | ((hi as u128) << 64)
}

impl AtomicU128 {
    /// Creates a new atomic initialized to `value`.
    pub const fn new(value: u128) -> Self {
        let lo = value as u64;
        let hi = (value >> 64) as u64;
        Self {
            inner: AtomicDouble::new(lo, hi),
        }
    }

    /// Atomically loads the 128-bit value.
    #[inline]
    pub fn load(&self) -> u128 {
        let (lo, hi) = self.inner.load();
        join(lo, hi)
    }

    /// Atomically stores `value` (implemented as a CAS loop over the current
    /// value, which is how 128-bit stores are realised without AVX).
    #[inline]
    pub fn store(&self, value: u128) {
        let mut cur = self.load();
        loop {
            match self.compare_exchange(cur, value) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Atomically compares and exchanges the full 128-bit value.
    #[inline]
    pub fn compare_exchange(&self, expected: u128, new: u128) -> Result<u128, u128> {
        match self.inner.compare_exchange(split(expected), split(new)) {
            Ok(_) => Ok(expected),
            Err((lo, hi)) => Err(join(lo, hi)),
        }
    }

    /// Atomically applies `f` to the current value until the update succeeds
    /// or `f` returns `None`.
    #[inline]
    pub fn fetch_update<F>(&self, mut f: F) -> Result<u128, u128>
    where
        F: FnMut(u128) -> Option<u128>,
    {
        let mut cur = self.load();
        loop {
            let Some(next) = f(cur) else { return Err(cur) };
            match self.compare_exchange(cur, next) {
                Ok(prev) => return Ok(prev),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Exposes the underlying pair for call sites that mix half-word and
    /// full-width access (e.g. LCRQ's slot layout).
    #[inline]
    pub fn as_double(&self) -> &AtomicDouble {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const BIG: u128 = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicU128::new(BIG);
        assert_eq!(a.load(), BIG);
        a.store(BIG ^ u128::MAX);
        assert_eq!(a.load(), BIG ^ u128::MAX);
    }

    #[test]
    fn compare_exchange_behaviour() {
        let a = AtomicU128::new(1);
        assert_eq!(a.compare_exchange(1, 2), Ok(1));
        assert_eq!(a.compare_exchange(1, 3), Err(2));
        assert_eq!(a.load(), 2);
    }

    #[test]
    fn fetch_update_increments_across_the_word_boundary() {
        let a = AtomicU128::new(u64::MAX as u128);
        let prev = a.fetch_update(|v| Some(v + 1)).unwrap();
        assert_eq!(prev, u64::MAX as u128);
        assert_eq!(a.load(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn fetch_update_abort_returns_current() {
        let a = AtomicU128::new(77);
        assert_eq!(a.fetch_update(|_| None), Err(77));
        assert_eq!(a.load(), 77);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        const THREADS: usize = 4;
        const OPS: u128 = 10_000;
        let a = Arc::new(AtomicU128::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        a.fetch_update(|v| Some(v + 1)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(), THREADS as u128 * OPS);
    }
}
