//! Double-width (2 × 64-bit) atomic cell.
//!
//! The wCQ paper stores two kinds of 16-byte objects that must be updated with
//! double-width CAS (`CAS2`):
//!
//! * ring entries: `(Value, Note)` pairs (Figure 4), where the *fast path* only
//!   ever CASes / ORs the `Value` half with single-word instructions and the
//!   *slow path* uses `CAS2` on the whole pair, and
//! * the global `Head` / `Tail` references: `(counter, help-reference)` pairs
//!   (§3.2), where the fast path performs a hardware fetch-and-add on the
//!   counter half and the slow path `CAS2`es the whole pair to install or clear
//!   a phase-2 help request.
//!
//! [`AtomicDouble`] supports exactly that mixed access pattern.  On `x86_64`
//! the pair is a 16-byte aligned `[AtomicU64; 2]`; single-word operations use
//! the ordinary `AtomicU64` API and the double-width compare-exchange is an
//! inline-assembly `lock cmpxchg16b` (stable Rust does not yet expose
//! `AtomicU128`, which is why the paper's repro hint calls out the need for an
//! asm workaround).  Mixing `lock`-prefixed single-word RMWs with
//! `lock cmpxchg16b` on the same 16-byte location is the standard technique
//! used by LCRQ/wCQ C implementations and is well-defined at the hardware
//! level; it is encapsulated here so the queue code never touches raw asm.
//!
//! On non-x86_64 targets every operation is routed through a striped spin lock
//! so the data structure remains linearizable (tests and examples still pass),
//! at the cost of the non-blocking progress guarantee.  [`crate::has_native_cas2`]
//! reports which path is active.

use core::sync::atomic::{AtomicU64, Ordering};

/// Yield point for the `wcq-check` schedule explorer (no-op unless the
/// `checkpoint` feature is enabled and a hook is installed).  Sits at the
/// entry of each atomic operation, before the hardware instruction runs.
#[inline(always)]
fn checkpoint(op: &'static str) {
    #[cfg(feature = "checkpoint")]
    crate::checkpoint::hit(op);
    #[cfg(not(feature = "checkpoint"))]
    let _ = op;
}

/// A 16-byte aligned pair of `u64` words with atomic single-word operations on
/// each half and a double-width compare-and-exchange over the whole pair.
///
/// Word 0 is called `lo` and word 1 `hi`.  For wCQ entries `lo` holds the
/// packed `Value` and `hi` holds the `Note`; for the global `Head`/`Tail`
/// pairs `lo` holds the monotonically increasing counter and `hi` holds the
/// phase-2 help reference.
#[repr(C, align(16))]
pub struct AtomicDouble {
    lo: AtomicU64,
    hi: AtomicU64,
}

impl core::fmt::Debug for AtomicDouble {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (lo, hi) = self.load();
        f.debug_struct("AtomicDouble")
            .field("lo", &lo)
            .field("hi", &hi)
            .finish()
    }
}

impl Default for AtomicDouble {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl AtomicDouble {
    /// Creates a new pair initialized to `(lo, hi)`.
    pub const fn new(lo: u64, hi: u64) -> Self {
        Self {
            lo: AtomicU64::new(lo),
            hi: AtomicU64::new(hi),
        }
    }

    /// Atomically loads both halves as a single 128-bit access.
    ///
    /// On x86_64 this issues `lock cmpxchg16b` with a desired value equal to
    /// the expected value, which is the canonical way to obtain an atomic
    /// 16-byte load without AVX guarantees.
    #[inline]
    pub fn load(&self) -> (u64, u64) {
        checkpoint("double.load");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            // SAFETY: `as_ptr()` is 16-byte aligned (`repr(C, align(16))`)
            // and valid for the `&self` borrow.  A cmpxchg16b with old == new
            // either fails (returning the current value) or "succeeds" by
            // rewriting the identical value; both are side-effect free and
            // yield an atomic snapshot.
            let (_, lo, hi) = unsafe { cmpxchg16b(self.as_ptr(), 0, 0, 0, 0) };
            (lo, hi)
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock, whose acquire/release
            // pair publishes these accesses.
            (
                self.lo.load(Ordering::Relaxed),
                self.hi.load(Ordering::Relaxed),
            )
        }
    }

    /// Atomically compares the whole pair with `expected` and, if equal,
    /// replaces it with `new`.  Returns `Ok(expected)` on success and
    /// `Err(current)` with the observed pair on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        expected: (u64, u64),
        new: (u64, u64),
    ) -> Result<(u64, u64), (u64, u64)> {
        checkpoint("double.cas2");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            // SAFETY: `as_ptr()` is 16-byte aligned (`repr(C, align(16))`)
            // and valid for the `&self` borrow.
            let (ok, lo, hi) =
                unsafe { cmpxchg16b(self.as_ptr(), expected.0, expected.1, new.0, new.1) };
            if ok {
                Ok(expected)
            } else {
                Err((lo, hi))
            }
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock, whose acquire/release
            // pair publishes these accesses.
            let cur = (
                self.lo.load(Ordering::Relaxed),
                self.hi.load(Ordering::Relaxed),
            );
            if cur == expected {
                // relaxed: still under the same stripe lock.
                self.lo.store(new.0, Ordering::Relaxed);
                self.hi.store(new.1, Ordering::Relaxed);
                Ok(expected)
            } else {
                Err(cur)
            }
        }
    }

    /// Double-width CAS returning only success/failure (the common shape used
    /// by the paper's pseudo-code).
    #[inline]
    pub fn cas2(&self, expected: (u64, u64), new: (u64, u64)) -> bool {
        self.compare_exchange(expected, new).is_ok()
    }

    /// Atomically loads the low word.
    #[inline]
    pub fn load_lo(&self) -> u64 {
        checkpoint("double.load_lo");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.lo.load(Ordering::SeqCst)
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            self.lo.load(Ordering::Relaxed)
        }
    }

    /// Atomically loads the high word.
    #[inline]
    pub fn load_hi(&self) -> u64 {
        checkpoint("double.load_hi");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.hi.load(Ordering::SeqCst)
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            self.hi.load(Ordering::Relaxed)
        }
    }

    /// Atomically stores the low word, leaving the high word untouched.
    #[inline]
    pub fn store_lo(&self, value: u64) {
        checkpoint("double.store_lo");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.lo.store(value, Ordering::SeqCst);
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            self.lo.store(value, Ordering::Relaxed);
        }
    }

    /// Atomic fetch-and-add on the low word (the paper's `F&A` on the counter
    /// component of `Head`/`Tail`), returning the previous value.
    #[inline]
    pub fn fetch_add_lo(&self, delta: u64) -> u64 {
        checkpoint("double.faa_lo");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.lo.fetch_add(delta, Ordering::SeqCst)
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            let prev = self.lo.load(Ordering::Relaxed);
            self.lo.store(prev.wrapping_add(delta), Ordering::Relaxed);
            prev
        }
    }

    /// Atomic fetch-OR on the low word (the paper's `OR` used by `consume`),
    /// returning the previous value.
    #[inline]
    pub fn fetch_or_lo(&self, bits: u64) -> u64 {
        checkpoint("double.or_lo");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.lo.fetch_or(bits, Ordering::SeqCst)
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            let prev = self.lo.load(Ordering::Relaxed);
            self.lo.store(prev | bits, Ordering::Relaxed);
            prev
        }
    }

    /// Single-word CAS on the low word only (the wCQ fast path CASes the entry
    /// `Value` without touching the `Note`).
    #[inline]
    pub fn cas_lo(&self, expected: u64, new: u64) -> bool {
        checkpoint("double.cas_lo");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            self.lo
                .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            let _g = fallback::lock_for(self as *const _ as usize);
            // relaxed: serialized under the stripe lock.
            if self.lo.load(Ordering::Relaxed) == expected {
                self.lo.store(new, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
    }

    /// Double-width CAS that replaces only the low word, requiring the whole
    /// pair to match `expected` (the §4 `CAS2_Value` shape).
    #[inline]
    pub fn cas2_lo(&self, expected: (u64, u64), new_lo: u64) -> bool {
        self.cas2(expected, (new_lo, expected.1))
    }

    /// Double-width CAS that replaces only the high word, requiring the whole
    /// pair to match `expected` (the §4 `CAS2_Note` shape).
    #[inline]
    pub fn cas2_hi(&self, expected: (u64, u64), new_hi: u64) -> bool {
        self.cas2(expected, (expected.0, new_hi))
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[inline]
    fn as_ptr(&self) -> *mut u64 {
        self as *const Self as *mut u64
    }
}

/// Raw `lock cmpxchg16b` wrapper.
///
/// Returns `(success, observed_lo, observed_hi)`.  `rbx` is reserved by LLVM
/// for internal use, so the new-low operand is exchanged into `rbx` around the
/// instruction — the standard stable-Rust workaround for the missing
/// `AtomicU128`.
///
/// # Safety
/// `ptr` must be valid for reads and writes of 16 bytes and 16-byte aligned.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
unsafe fn cmpxchg16b(
    ptr: *mut u64,
    expected_lo: u64,
    expected_hi: u64,
    new_lo: u64,
    new_hi: u64,
) -> (bool, u64, u64) {
    debug_assert!(
        (ptr as usize).is_multiple_of(16),
        "cmpxchg16b requires 16-byte alignment"
    );
    let ok: u8;
    let out_lo: u64;
    let out_hi: u64;
    // SAFETY: caller guarantees alignment/validity; rbx is saved and restored
    // around the instruction via the xchg pair.  `ptr` and `ok` are pinned to
    // explicit registers (rdi / r8b): LLVM may otherwise allocate a generic
    // `reg`/`reg_byte` operand to rbx/bl, which the xchg window clobbers —
    // the `new_lo` operand is the only one that stays correct if it lands on
    // rbx (the xchg then degenerates to a no-op and cmpxchg16b leaves rbx
    // unchanged).
    unsafe {
        core::arch::asm!(
            "xchg {new_lo}, rbx",
            "lock cmpxchg16b [rdi]",
            "sete r8b",
            "xchg {new_lo}, rbx",
            new_lo = inout(reg) new_lo => _,
            in("rdi") ptr,
            in("rcx") new_hi,
            inout("rax") expected_lo => out_lo,
            inout("rdx") expected_hi => out_hi,
            out("r8b") ok,
            options(nostack),
        );
    }
    (ok != 0, out_lo, out_hi)
}

/// Striped spin-lock fallback used on targets without `cmpxchg16b` (and under
/// Miri, which cannot interpret the inline-assembly path).
#[cfg(any(not(target_arch = "x86_64"), miri))]
mod fallback {
    use core::sync::atomic::{AtomicBool, Ordering};

    const STRIPES: usize = 64;

    struct Spin(AtomicBool);

    static LOCKS: [Spin; STRIPES] = {
        #[allow(clippy::declare_interior_mutable_const)]
        const INIT: Spin = Spin(AtomicBool::new(false));
        [INIT; STRIPES]
    };

    pub(super) struct Guard(&'static Spin);

    impl Drop for Guard {
        fn drop(&mut self) {
            self.0 .0.store(false, Ordering::Release);
        }
    }

    pub(super) fn lock_for(addr: usize) -> Guard {
        let stripe = (addr >> 4) % STRIPES;
        let lock = &LOCKS[stripe];
        while lock
            .0
            // relaxed: failure ordering of a spin-lock acquire; the retry
            // loop re-attempts with Acquire, so nothing is read under the
            // failed CAS.
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            core::hint::spin_loop();
        }
        Guard(lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_and_load_roundtrip() {
        let d = AtomicDouble::new(7, 9);
        assert_eq!(d.load(), (7, 9));
        assert_eq!(d.load_lo(), 7);
        assert_eq!(d.load_hi(), 9);
    }

    #[test]
    fn alignment_is_sixteen_bytes() {
        assert_eq!(core::mem::align_of::<AtomicDouble>(), 16);
        assert_eq!(core::mem::size_of::<AtomicDouble>(), 16);
        let d = AtomicDouble::new(0, 0);
        assert_eq!((&d as *const AtomicDouble as usize) % 16, 0);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let d = AtomicDouble::new(1, 2);
        assert_eq!(d.compare_exchange((1, 2), (3, 4)), Ok((1, 2)));
        assert_eq!(d.load(), (3, 4));
        assert_eq!(d.compare_exchange((1, 2), (5, 6)), Err((3, 4)));
        assert_eq!(d.load(), (3, 4));
    }

    #[test]
    fn cas2_lo_keeps_hi() {
        let d = AtomicDouble::new(10, 20);
        assert!(d.cas2_lo((10, 20), 11));
        assert_eq!(d.load(), (11, 20));
        // Stale expectation fails.
        assert!(!d.cas2_lo((10, 20), 12));
    }

    #[test]
    fn cas2_hi_keeps_lo() {
        let d = AtomicDouble::new(10, 20);
        assert!(d.cas2_hi((10, 20), 21));
        assert_eq!(d.load(), (10, 21));
        assert!(!d.cas2_hi((10, 20), 22));
    }

    #[test]
    fn single_word_ops_do_not_disturb_other_half() {
        let d = AtomicDouble::new(0, 0xDEAD);
        assert_eq!(d.fetch_add_lo(5), 0);
        assert_eq!(d.fetch_add_lo(1), 5);
        assert_eq!(d.fetch_or_lo(0b1000), 6);
        assert_eq!(d.load(), (0b1110, 0xDEAD));
        d.store_lo(42);
        assert_eq!(d.load(), (42, 0xDEAD));
        assert!(d.cas_lo(42, 43));
        assert!(!d.cas_lo(42, 44));
        assert_eq!(d.load(), (43, 0xDEAD));
    }

    #[test]
    fn concurrent_fetch_add_and_cas2_agree() {
        // Threads hammer the counter half with F&A while another thread flips
        // the pointer half with CAS2, mirroring the paper's Head/Tail usage.
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 20_000;
        let d = Arc::new(AtomicDouble::new(0, 0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    d.fetch_add_lo(1);
                }
            }));
        }
        {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    loop {
                        let cur = d.load();
                        if d.cas2(cur, (cur.0, i)) {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (lo, hi) = d.load();
        assert_eq!(lo, THREADS as u64 * PER_THREAD);
        assert_eq!(hi, 999);
    }

    #[test]
    fn concurrent_cas2_is_mutually_exclusive() {
        // Many threads CAS2 the pair from (x, x) to (x+1, x+1); every value is
        // claimed exactly once, so the final pair equals the total count.
        const THREADS: usize = 8;
        const OPS: u64 = 5_000;
        let d = Arc::new(AtomicDouble::new(0, 0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0u64;
                while claimed < OPS {
                    let cur = d.load();
                    assert_eq!(cur.0, cur.1, "pair halves must always match");
                    if d.cas2(cur, (cur.0 + 1, cur.1 + 1)) {
                        claimed += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.load(), (THREADS as u64 * OPS, THREADS as u64 * OPS));
    }
}
