//! Seeded open-loop arrival schedules.
//!
//! A closed-loop benchmark sends the next request only after the previous
//! one completes, which silently stretches the arrival process whenever the
//! system stalls — the *coordinated omission* trap: the worst latencies are
//! exactly the ones that never get measured.  An **open-loop** generator
//! fixes the arrival times in advance, independent of how the system is
//! coping, and measures every request from its *intended* start.
//!
//! [`ArrivalProcess`] materializes such a schedule: a vector of intended
//! start offsets (nanoseconds from the scenario epoch), drawn
//! deterministically from a [`DetRng`] so the same seed reproduces the same
//! schedule byte for byte.  Three [`ArrivalPattern`]s cover the shapes the
//! evaluation needs:
//!
//! * [`Steady`](ArrivalPattern::Steady) — a Poisson process at a fixed rate
//!   (exponential inter-arrivals), the baseline load.
//! * [`Bursty`](ArrivalPattern::Bursty) — an on-off modulated Poisson
//!   process: `on_ns` of arrivals at the burst rate, then `off_ns` of
//!   silence, repeated.  This is the tail-latency stressor: each burst
//!   front-loads a backlog the pipeline must absorb.
//! * [`Ramp`](ArrivalPattern::Ramp) — the rate climbs linearly from
//!   `from_per_sec` to `to_per_sec` over `over_ns`, then holds; the overload
//!   transition shape.
//!
//! Virtual time never consults the wall clock: the schedule is a pure
//! function of `(pattern, seed, count)`.

use wcq_harness::DetRng;

/// Nanoseconds per second, as the f64 the rate arithmetic runs in.
const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// The shape of an open-loop arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson arrivals at a fixed rate (requests per second).
    Steady {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// On-off modulated Poisson arrivals: bursts of `on_ns` at
    /// `burst_per_sec`, separated by `off_ns` of silence.
    Bursty {
        /// Arrival rate *inside* a burst, in requests per second.
        burst_per_sec: f64,
        /// Burst duration in nanoseconds.
        on_ns: u64,
        /// Silence duration between bursts in nanoseconds.
        off_ns: u64,
    },
    /// Rate climbs linearly from `from_per_sec` to `to_per_sec` over
    /// `over_ns` of virtual time, then holds at `to_per_sec`.
    Ramp {
        /// Starting rate in requests per second.
        from_per_sec: f64,
        /// Final rate in requests per second.
        to_per_sec: f64,
        /// Virtual-time length of the climb, in nanoseconds.
        over_ns: u64,
    },
}

impl ArrivalPattern {
    /// The instantaneous arrival rate (requests per second) at virtual time
    /// `at_ns`, ignoring the on-off gate (the gate is applied separately so
    /// bursty silence is an exact jump, not a thinned rate).
    fn rate_at(&self, at_ns: u64) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Bursty { burst_per_sec, .. } => burst_per_sec,
            ArrivalPattern::Ramp {
                from_per_sec,
                to_per_sec,
                over_ns,
            } => {
                if over_ns == 0 || at_ns >= over_ns {
                    to_per_sec
                } else {
                    let t = at_ns as f64 / over_ns as f64;
                    from_per_sec + (to_per_sec - from_per_sec) * t
                }
            }
        }
    }
}

/// A seeded open-loop arrival process: draws intended-start schedules.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    pattern: ArrivalPattern,
    rng: DetRng,
}

impl ArrivalProcess {
    /// Creates a process drawing from `pattern` with the given seed.
    pub fn new(pattern: ArrivalPattern, seed: u64) -> Self {
        Self {
            pattern,
            rng: DetRng::new(seed),
        }
    }

    /// Materializes the next `count` intended-start offsets, in nanoseconds
    /// from the scenario epoch.  The sequence is nondecreasing, and a pure
    /// function of `(pattern, seed, count)` — same inputs, byte-identical
    /// schedule.
    pub fn schedule(&mut self, count: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        let mut now_ns = 0u64;
        for _ in 0..count {
            let rate = self.pattern.rate_at(now_ns).max(1e-9);
            // Exponential inter-arrival: -ln(U)/rate with U in (0, 1].
            let u = ((self.rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let gap_ns = (-u.ln() / rate * NANOS_PER_SEC).min(u64::MAX as f64 / 2.0) as u64;
            now_ns = now_ns.saturating_add(gap_ns);
            if let ArrivalPattern::Bursty { on_ns, off_ns, .. } = self.pattern {
                now_ns = skip_off_phase(now_ns, on_ns, off_ns);
            }
            out.push(now_ns);
        }
        out
    }

    /// Splits one schedule of `count` arrivals round-robin across `lanes`
    /// frontends: lane `i` gets arrivals `i, i + lanes, i + 2·lanes, …`, so
    /// the union of all lanes is exactly the single-process schedule and
    /// each lane's sequence stays nondecreasing.
    pub fn schedule_per_lane(&mut self, count: usize, lanes: usize) -> Vec<Vec<u64>> {
        let all = self.schedule(count);
        let lanes = lanes.max(1);
        let mut per = vec![Vec::with_capacity(count / lanes + 1); lanes];
        for (i, t) in all.into_iter().enumerate() {
            per[i % lanes].push(t);
        }
        per
    }
}

/// Maps a virtual timestamp into the on-phase of an on-off cycle: a stamp
/// landing in the off-phase jumps to the start of the next burst.
fn skip_off_phase(at_ns: u64, on_ns: u64, off_ns: u64) -> u64 {
    let cycle = on_ns.saturating_add(off_ns);
    if cycle == 0 || off_ns == 0 {
        return at_ns;
    }
    let phase = at_ns % cycle;
    if phase < on_ns {
        at_ns
    } else {
        // Jump to the next cycle boundary (the next burst's first instant).
        at_ns - phase + cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEADY: ArrivalPattern = ArrivalPattern::Steady {
        rate_per_sec: 100_000.0,
    };
    const BURSTY: ArrivalPattern = ArrivalPattern::Bursty {
        burst_per_sec: 1_000_000.0,
        on_ns: 1_000_000,
        off_ns: 4_000_000,
    };
    const RAMP: ArrivalPattern = ArrivalPattern::Ramp {
        from_per_sec: 10_000.0,
        to_per_sec: 1_000_000.0,
        over_ns: 100_000_000,
    };

    #[test]
    fn same_seed_same_schedule_byte_for_byte() {
        for pattern in [STEADY, BURSTY, RAMP] {
            let a = ArrivalProcess::new(pattern, 42).schedule(5_000);
            let b = ArrivalProcess::new(pattern, 42).schedule(5_000);
            assert_eq!(a, b, "{pattern:?} must replay exactly");
            let c = ArrivalProcess::new(pattern, 43).schedule(5_000);
            assert_ne!(a, c, "{pattern:?} must vary with the seed");
        }
    }

    #[test]
    fn schedules_are_nondecreasing() {
        for pattern in [STEADY, BURSTY, RAMP] {
            let s = ArrivalProcess::new(pattern, 7).schedule(10_000);
            assert!(
                s.windows(2).all(|w| w[0] <= w[1]),
                "{pattern:?} produced a time-travelling schedule"
            );
        }
    }

    #[test]
    fn steady_rate_is_roughly_calibrated() {
        // 100k/s over 10k arrivals ⇒ ~100ms of virtual time; the sample mean
        // of an exponential at n = 10⁴ sits well within ±10%.
        let s = ArrivalProcess::new(STEADY, 11).schedule(10_000);
        let span = *s.last().unwrap() as f64 / NANOS_PER_SEC;
        assert!(
            (0.08..0.12).contains(&span),
            "span {span}s for 10k @ 100k/s"
        );
    }

    #[test]
    fn bursty_stamps_never_land_in_the_off_phase() {
        let s = ArrivalProcess::new(BURSTY, 13).schedule(10_000);
        let cycle = 5_000_000u64;
        assert!(
            s.iter().all(|t| t % cycle < 1_000_000),
            "an arrival landed in the silent phase"
        );
        // And the schedule actually spans several cycles, so the gaps are
        // exercised rather than vacuously satisfied.
        assert!(*s.last().unwrap() > 3 * cycle);
    }

    #[test]
    fn ramp_accelerates() {
        let s = ArrivalProcess::new(RAMP, 17).schedule(20_000);
        // Mean gap over the first tenth vs the last tenth: the ramp must
        // make late arrivals denser.
        let early = s[2_000] - s[0];
        let late = s[19_999] - s[18_000];
        assert!(
            late < early / 4,
            "late gaps ({late} ns/2k) should be far denser than early ({early} ns/2k)"
        );
    }

    #[test]
    fn per_lane_split_preserves_the_union_and_order() {
        let whole = ArrivalProcess::new(STEADY, 23).schedule(999);
        let lanes = ArrivalProcess::new(STEADY, 23).schedule_per_lane(999, 4);
        assert_eq!(lanes.len(), 4);
        let mut union: Vec<u64> = lanes.iter().flatten().copied().collect();
        union.sort_unstable();
        let mut sorted_whole = whole.clone();
        sorted_whole.sort_unstable();
        assert_eq!(union, sorted_whole);
        for lane in &lanes {
            assert!(lane.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
