//! # wcq-scenario — seeded open-loop load generation for the channel layer
//!
//! Every other benchmark in this workspace is closed-loop: N threads spin on
//! the queue as fast as it lets them, and throughput is the score.  A
//! production channel is judged differently — on p99/p999 latency under
//! *open-loop* arrivals it does not control, where a measurement that only
//! starts the clock when the send call runs quietly hides every stall
//! (coordinated omission).  This crate is the load-generation half of that
//! evaluation; `wcq_core::metrics::LatencyHistogram` and the
//! `BENCH_*_latency.json` diffing landed earlier are the measurement half.
//!
//! Three pieces:
//!
//! * [`ArrivalProcess`] — seeded steady / bursty (on-off) / ramp schedules
//!   of **intended start times** in virtual nanoseconds, drawn from
//!   [`wcq_harness::DetRng`]; same seed, byte-identical schedule.
//! * [`ChurnPlan`] — a seeded endpoint clone/drop storm raced against the
//!   run, leftovers dropping at shutdown to race the close.
//! * [`Scenario`] — the N-frontend / M-worker pipeline that replays both
//!   over real channels (any backend / shard policy / patience mode),
//!   records intended-start-relative latencies per stage, and verifies
//!   exactly-once delivery and exact post-close drains as it goes.
//!
//! ## Quickstart
//!
//! ```
//! use wcq_scenario::{ArrivalPattern, Scenario, ScenarioConfig};
//!
//! let report = Scenario::new(ScenarioConfig {
//!     requests: 200,
//!     pattern: ArrivalPattern::Steady { rate_per_sec: 400_000.0 },
//!     churn_events: 16,
//!     ..ScenarioConfig::default()
//! })
//! .run();
//! assert_eq!(report.completed, 200);
//! // Tail latency measured from the *intended* start of each request:
//! let _p99_ns = report.queue_wait.p99();
//! ```
//!
//! ## Reproducibility contract
//!
//! [`Scenario::plan`] is a pure function of the config: the arrival
//! schedule, the hi/lo lane assignment and the churn plan replay byte for
//! byte from the same seed.  The *run* executes that plan on real threads
//! and a real clock, so its latencies vary — but which requests exist, when
//! they were supposed to start, and which churn events race the close do
//! not.  A failing run is rerun with the printed seed and the same plan.

#![warn(missing_docs)]

pub mod arrival;
pub mod churn;
pub mod scenario;

pub use arrival::{ArrivalPattern, ArrivalProcess};
pub use churn::{ChurnEvent, ChurnPlan};
pub use scenario::{Scenario, ScenarioConfig, ScenarioPlan, ScenarioReport};
