//! The scenario driver: an N-frontend / M-worker request pipeline under
//! open-loop load, seeded connection churn, and per-stage latency capture.
//!
//! One [`Scenario::run`] models the fan-in/fan-out server shape the ROADMAP
//! north-star describes:
//!
//! * **Frontends** replay a pre-drawn [`ArrivalProcess`] schedule: each
//!   request is released at its *intended* start time whether or not the
//!   pipeline is keeping up (open loop), stamped with that intended time,
//!   and sent on one of two priority lanes (hi/lo channels over the
//!   configured backend).
//! * **Workers** drain both lanes through one parked wait —
//!   [`wcq::recv_any_timeout`] — preferring the hi lane, simulate
//!   `work_ns` of service time, and forward completions.
//! * A **collector** drains completions via [`Receiver::recv_timeout`] and
//!   verifies exactly-once delivery: every request id exactly once, the
//!   drain exact through close.
//! * A **churn** thread replays the seeded [`ChurnPlan`]: sender/receiver
//!   clones appear and disappear mid-run, and the leftovers drop at
//!   shutdown, racing the frontends' own close — the window where wakes are
//!   easiest to lose.
//!
//! Latencies are recorded from the **intended** start (schedule offset), not
//! from the moment the send call happened to run, so queueing delay — the
//! part coordinated omission hides — is inside every histogram:
//!
//! * `queue_wait`: intended start → worker dequeue,
//! * `end_to_end`: intended start → completion collected,
//! * `send_op`: duration of the send call itself (frontend-side pushback).
//!
//! The schedule and churn plan are pure functions of the config
//! ([`Scenario::plan`]); the run itself is real concurrency on real time.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wcq::{
    ChannelBackend, HistogramSnapshot, LatencyHistogram, PatienceMode, Receiver, RecvTimeoutError,
    Sender, ShardPolicy,
};
use wcq_harness::DetRng;

use crate::arrival::{ArrivalPattern, ArrivalProcess};
use crate::churn::{ChurnEvent, ChurnPlan};

/// Fraction (1/n) of requests routed to the hi-priority lane.
const HI_LANE_ONE_IN: u64 = 8;

/// One request travelling the pipeline.
#[derive(Debug, Clone, Copy)]
struct Request {
    id: u64,
    intended_ns: u64,
}

/// Everything a scenario run is parameterized by.  The `(seed, requests,
/// frontends, pattern, churn_events)` subset fully determines the schedule
/// and churn plan (see [`Scenario::plan`]); the rest shapes the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Master seed: arrivals, lane priorities and churn all derive from it.
    pub seed: u64,
    /// Number of frontend (load-generating) threads.
    pub frontends: usize,
    /// Number of worker (service) threads.
    pub workers: usize,
    /// Total requests across all frontends.
    pub requests: usize,
    /// The open-loop arrival shape.
    pub pattern: ArrivalPattern,
    /// Which queue shape backs the request lanes and the completion channel.
    pub backend: ChannelBackend,
    /// Shard count for [`ChannelBackend::Sharded`] (ignored otherwise).
    pub shards: usize,
    /// Enqueue routing policy for the sharded backend.
    pub shard_policy: ShardPolicy,
    /// Fast-path patience selection for every queue in the pipeline.
    pub patience: PatienceMode,
    /// Simulated service time per request, in nanoseconds of spinning.
    pub work_ns: u64,
    /// Number of churn events raced against the run (0 disables churn).
    pub churn_events: usize,
    /// Parked-wait bound for the workers' multi-lane receive and the
    /// collector's `recv_timeout`.
    pub worker_timeout: Duration,
    /// Injected stall before each worker starts draining — the
    /// coordinated-omission probe: with latencies measured from intended
    /// start, a stalled consumer *must* inflate the recorded tail.
    pub worker_stall: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            frontends: 2,
            workers: 2,
            requests: 2_000,
            pattern: ArrivalPattern::Steady {
                rate_per_sec: 200_000.0,
            },
            backend: ChannelBackend::Unbounded,
            shards: 1,
            shard_policy: ShardPolicy::default(),
            patience: PatienceMode::Adaptive(wcq::AdaptivePatience::default()),
            work_ns: 500,
            churn_events: 64,
            worker_timeout: Duration::from_millis(1),
            worker_stall: Duration::ZERO,
        }
    }
}

/// The deterministic half of a scenario: per-frontend intended-start
/// schedules, per-request lane priorities, and the churn plan.  Two calls to
/// [`Scenario::plan`] with the same config return equal plans — this is the
/// replayability contract the determinism test pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// `lanes[f][j]` = intended start (ns from epoch) of frontend `f`'s
    /// `j`-th request.
    pub lanes: Vec<Vec<u64>>,
    /// `hi[f][j]` = whether that request rides the hi-priority lane.
    pub hi: Vec<Vec<bool>>,
    /// The churn storm raced against the run.
    pub churn: ChurnPlan,
}

impl ScenarioPlan {
    /// The virtual-time span of the whole schedule (ns from epoch to the
    /// last intended start).
    pub fn span_ns(&self) -> u64 {
        self.lanes
            .iter()
            .filter_map(|l| l.last().copied())
            .max()
            .unwrap_or(0)
    }
}

/// What one scenario run measured.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Intended start → worker dequeue, per request (ns).
    pub queue_wait: HistogramSnapshot,
    /// Intended start → completion collected, per request (ns).
    pub end_to_end: HistogramSnapshot,
    /// Duration of each frontend send call (ns).
    pub send_op: HistogramSnapshot,
    /// Requests verified delivered exactly once (equals the config's
    /// `requests` on success; [`Scenario::run`] panics otherwise).
    pub completed: u64,
    /// Parked waits that expired empty across workers + collector.
    pub timeouts: u64,
    /// Requests that travelled the hi-priority lane.
    pub hi_lane: u64,
    /// Churn events actually executed.
    pub churn_executed: u64,
}

/// A configured scenario, ready to plan or run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scenario {
    /// The run's parameters.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Wraps a config.
    pub fn new(config: ScenarioConfig) -> Self {
        Self { config }
    }

    /// Materializes the deterministic half of the run.  Pure function of the
    /// config: same seed → byte-identical plan.
    pub fn plan(&self) -> ScenarioPlan {
        let cfg = &self.config;
        let root = DetRng::new(cfg.seed);
        let mut arrivals = ArrivalProcess::new(cfg.pattern, root.stream(1).next_u64());
        let lanes = arrivals.schedule_per_lane(cfg.requests, cfg.frontends.max(1));
        let mut prio = root.stream(2);
        let hi = lanes
            .iter()
            .map(|lane| {
                lane.iter()
                    .map(|_| prio.next_below(HI_LANE_ONE_IN) == 0)
                    .collect()
            })
            .collect();
        let span = lanes
            .iter()
            .filter_map(|l| l.last().copied())
            .max()
            .unwrap_or(0);
        let churn = ChurnPlan::from_seed(root.stream(3).next_u64(), span.max(1), cfg.churn_events);
        ScenarioPlan { lanes, hi, churn }
    }

    /// Runs the pipeline to completion and returns the measured report.
    ///
    /// Panics on any correctness violation: a lost request, a duplicated
    /// completion, or a drain that ends before every accepted request came
    /// out — so a green run *is* the oracle passing.
    pub fn run(&self) -> ScenarioReport {
        let cfg = self.config;
        let plan = self.plan();
        let frontends = cfg.frontends.max(1);
        let workers = cfg.workers.max(1);

        // Every thread that binds an endpoint of a queue holds one
        // registration slot on it while bound: frontends and workers on the
        // request lanes, workers and the collector on the completion
        // channel.  +2 covers the main thread and a churn-thread bind.
        let request_slots = frontends + workers + 2;
        let lane_builder = || {
            let mut b = wcq::builder()
                .capacity_order(10)
                .threads(request_slots)
                .shards(cfg.shards.max(1))
                .shard_policy(cfg.shard_policy)
                .patience_mode(cfg.patience);
            b = b.backend(cfg.backend);
            b
        };
        let (hi_tx, hi_rx) = lane_builder().build_channel::<Request>();
        let (lo_tx, lo_rx) = lane_builder().build_channel::<Request>();
        let (done_tx, mut done_rx) = wcq::builder()
            .capacity_order(10)
            .threads(workers + 2)
            .backend(cfg.backend)
            .shards(cfg.shards.max(1))
            .shard_policy(cfg.shard_policy)
            .build_channel::<Request>();

        let queue_wait = LatencyHistogram::new();
        let end_to_end = LatencyHistogram::new();
        let send_op = LatencyHistogram::new();
        let timeouts = AtomicU64::new(0);
        let hi_lane = AtomicU64::new(0);
        let churn_executed = AtomicU64::new(0);

        let epoch = Instant::now();
        let completed = std::thread::scope(|s| {
            // Frontends: replay the schedule open-loop.
            for (f, (lane, hi_flags)) in plan.lanes.iter().zip(&plan.hi).enumerate() {
                let mut hi_tx = hi_tx.clone();
                let mut lo_tx = lo_tx.clone();
                let send_op = &send_op;
                let hi_lane = &hi_lane;
                s.spawn(move || {
                    for (j, (&intended_ns, &is_hi)) in lane.iter().zip(hi_flags).enumerate() {
                        wait_until(epoch, intended_ns);
                        let req = Request {
                            // Round-robin split: lane f position j was
                            // global arrival j*frontends + f.
                            id: (j * frontends + f) as u64,
                            intended_ns,
                        };
                        let t0 = Instant::now();
                        let sent = if is_hi {
                            hi_lane.fetch_add(1, Relaxed);
                            hi_tx.send(req)
                        } else {
                            lo_tx.send(req)
                        };
                        sent.expect("request lanes outlive the frontends");
                        send_op.record(t0.elapsed().as_nanos() as u64);
                    }
                    // Drop both senders here: the frontend disconnecting is
                    // part of the close race the churn plan stresses.
                });
            }

            // Churn: clone/drop storms against both lanes, racing close.
            if !plan.churn.events.is_empty() {
                let churn = &plan.churn;
                let hi_template = hi_tx.clone();
                let lo_template = lo_tx.clone();
                let hi_rx_template = hi_rx.clone();
                let lo_rx_template = lo_rx.clone();
                let churn_executed = &churn_executed;
                s.spawn(move || {
                    let mut tx_pool: Vec<Sender<Request>> = Vec::new();
                    let mut rx_pool: Vec<Receiver<Request>> = Vec::new();
                    for (i, event) in churn.events.iter().enumerate() {
                        wait_until(epoch, event.at_ns());
                        match event {
                            ChurnEvent::CloneSender { .. } => tx_pool.push(if i % 2 == 0 {
                                lo_template.clone()
                            } else {
                                hi_template.clone()
                            }),
                            ChurnEvent::DropSender { .. } => drop(tx_pool.pop()),
                            ChurnEvent::CloneReceiver { .. } => rx_pool.push(if i % 2 == 0 {
                                hi_rx_template.clone()
                            } else {
                                lo_rx_template.clone()
                            }),
                            ChurnEvent::DropReceiver { .. } => drop(rx_pool.pop()),
                        }
                        churn_executed.fetch_add(1, Relaxed);
                    }
                    // The leftover pool (and the templates) drop here — the
                    // last of them racing the frontends' own disconnects for
                    // who actually closes the lanes.
                });
            }

            // Workers: one parked wait across both lanes, hi preferred.
            for _ in 0..workers {
                let mut hi_rx = hi_rx.clone();
                let mut lo_rx = lo_rx.clone();
                let mut done_tx = done_tx.clone();
                let queue_wait = &queue_wait;
                let timeouts = &timeouts;
                s.spawn(move || {
                    if !cfg.worker_stall.is_zero() {
                        std::thread::sleep(cfg.worker_stall);
                    }
                    loop {
                        let mut lanes = [&mut hi_rx, &mut lo_rx];
                        match wcq::recv_any_timeout(&mut lanes, cfg.worker_timeout) {
                            Ok((_, req)) => {
                                let now_ns = epoch.elapsed().as_nanos() as u64;
                                queue_wait.record(now_ns.saturating_sub(req.intended_ns));
                                busy_work(cfg.work_ns);
                                done_tx.send(req).expect("collector outlives the workers");
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                timeouts.fetch_add(1, Relaxed);
                            }
                            // Closed only once *both* lanes are closed and
                            // fully drained — nothing left to serve.
                            Err(RecvTimeoutError::Closed) => break,
                        }
                    }
                    // Worker disconnects from the completion channel; the
                    // last one out closes it.
                });
            }
            // The scope keeps the original request-lane endpoints alive until
            // every thread above has cloned what it needs; release them now
            // so the channel can actually close when the clones go.
            drop(hi_tx);
            drop(lo_tx);
            drop(hi_rx);
            drop(lo_rx);
            drop(done_tx);

            // Collector (this thread): drain completions through
            // `recv_timeout` until the exact-drain close, verifying
            // exactly-once delivery.
            let seen = Mutex::new(vec![false; cfg.requests]);
            let mut got = 0u64;
            loop {
                match done_rx.recv_timeout(cfg.worker_timeout) {
                    Ok(req) => {
                        let now_ns = epoch.elapsed().as_nanos() as u64;
                        end_to_end.record(now_ns.saturating_sub(req.intended_ns));
                        let mut seen = seen.lock().unwrap();
                        assert!(
                            !std::mem::replace(&mut seen[req.id as usize], true),
                            "request {} completed twice",
                            req.id
                        );
                        got += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        timeouts.fetch_add(1, Relaxed);
                    }
                    Err(RecvTimeoutError::Closed) => break,
                }
            }
            assert_eq!(
                got, cfg.requests as u64,
                "the post-close drain must deliver every accepted request"
            );
            got
        });

        ScenarioReport {
            queue_wait: queue_wait.snapshot(),
            end_to_end: end_to_end.snapshot(),
            send_op: send_op.snapshot(),
            completed,
            timeouts: timeouts.into_inner(),
            hi_lane: hi_lane.into_inner(),
            churn_executed: churn_executed.into_inner(),
        }
    }
}

/// Sleeps coarsely, then spins, until `epoch + offset_ns`.  The spin tail
/// keeps release jitter well under the latency buckets the histograms can
/// resolve; the sleep head keeps idle schedules from burning a core.
fn wait_until(epoch: Instant, offset_ns: u64) {
    let target = Duration::from_nanos(offset_ns);
    loop {
        let elapsed = epoch.elapsed();
        if elapsed >= target {
            return;
        }
        let remaining = target - elapsed;
        if remaining > Duration::from_millis(2) {
            std::thread::sleep(remaining - Duration::from_millis(1));
        } else if remaining > Duration::from_micros(50) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Burns roughly `ns` nanoseconds of CPU — the simulated service time.
fn busy_work(ns: u64) {
    if ns == 0 {
        return;
    }
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ScenarioConfig {
        ScenarioConfig {
            requests: 400,
            pattern: ArrivalPattern::Steady {
                rate_per_sec: 400_000.0,
            },
            work_ns: 0,
            churn_events: 32,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn plan_is_deterministic_byte_for_byte() {
        let scenario = Scenario::new(quick_config());
        let a = scenario.plan();
        let b = scenario.plan();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A different seed moves every deterministic component.
        let other = Scenario::new(ScenarioConfig {
            seed: quick_config().seed + 1,
            ..quick_config()
        })
        .plan();
        assert_ne!(a.lanes, other.lanes);
        assert_ne!(a.churn, other.churn);
    }

    #[test]
    fn plan_covers_every_request_exactly_once() {
        let cfg = quick_config();
        let plan = Scenario::new(cfg).plan();
        assert_eq!(plan.lanes.len(), cfg.frontends);
        let total: usize = plan.lanes.iter().map(Vec::len).sum();
        assert_eq!(total, cfg.requests);
        // Ids reconstructed the way the frontends stamp them cover 0..n.
        let mut seen = vec![false; cfg.requests];
        for (f, lane) in plan.lanes.iter().enumerate() {
            for j in 0..lane.len() {
                let id = j * cfg.frontends + f;
                assert!(!std::mem::replace(&mut seen[id], true));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_delivers_exactly_once_across_backends() {
        for backend in [ChannelBackend::Unbounded, ChannelBackend::Sharded] {
            let report = Scenario::new(ScenarioConfig {
                backend,
                shards: 4,
                ..quick_config()
            })
            .run();
            assert_eq!(report.completed, 400, "{backend:?}");
            assert_eq!(report.queue_wait.count(), 400, "{backend:?}");
            assert_eq!(report.end_to_end.count(), 400, "{backend:?}");
            assert_eq!(report.send_op.count(), 400, "{backend:?}");
            assert_eq!(report.churn_executed, 32, "{backend:?}");
            assert!(report.hi_lane > 0, "{backend:?}: hi lane never exercised");
        }
    }

    #[test]
    fn bounded_backend_round_trips_too() {
        let report = Scenario::new(ScenarioConfig {
            backend: ChannelBackend::Bounded,
            churn_events: 16,
            ..quick_config()
        })
        .run();
        assert_eq!(report.completed, 400);
    }

    #[test]
    fn stalled_consumer_inflates_p99_from_intended_start() {
        // The coordinated-omission probe: the workers sleep 200ms before
        // draining, while the open-loop schedule keeps arriving in the first
        // ~1ms.  Measured from *intended* start, the backlog's wait is the
        // stall itself, so p99 (indeed p50) must show it.  A measurement
        // taken from dequeue time — the closed-loop mistake — would show
        // sub-millisecond waits and fail this test.
        let report = Scenario::new(ScenarioConfig {
            worker_stall: Duration::from_millis(200),
            churn_events: 0,
            ..quick_config()
        })
        .run();
        let p99_ms = report.queue_wait.p99() / 1_000_000;
        assert!(
            p99_ms >= 50,
            "stalled consumer must inflate queue-wait p99: got {p99_ms}ms"
        );
        assert!(
            report.end_to_end.p99() >= report.queue_wait.p50(),
            "end-to-end includes the queue wait"
        );
    }

    #[test]
    fn worker_timeouts_fire_while_stalled_but_drop_nothing() {
        // A schedule with one long silent gap: the workers' parked waits
        // time out (retryable) without ever dropping an accepted element.
        let report = Scenario::new(ScenarioConfig {
            pattern: ArrivalPattern::Bursty {
                burst_per_sec: 400_000.0,
                // ~40 arrivals per 0.1ms burst: 200 requests span several
                // 20ms silent gaps, each expiring many 1ms parked waits.
                on_ns: 100_000,
                off_ns: 20_000_000,
            },
            worker_timeout: Duration::from_millis(1),
            requests: 200,
            churn_events: 0,
            ..quick_config()
        })
        .run();
        assert_eq!(report.completed, 200);
        assert!(
            report.timeouts > 0,
            "the off-phases must expire some parked waits"
        );
    }
}
