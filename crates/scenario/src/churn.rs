//! Seeded connection-churn plans: endpoint clone/drop storms racing close.
//!
//! A long-lived service never has a stable endpoint population — connections
//! arrive (sender clones), disconnect (drops), and the nastiest windows are
//! the ones where the churn races shutdown.  The channel layer's close
//! protocol (last-sender-drop closes; receivers conclude `Closed` only after
//! the drain is exact) is precisely what this stresses.
//!
//! A [`ChurnPlan`] is the deterministic description of one such storm: a
//! time-sorted list of [`ChurnEvent`]s drawn from a [`DetRng`].  The plan is
//! pure data — `PartialEq`, replayable byte for byte from its seed — so a
//! failing scenario run can be reproduced exactly, and the scenario driver
//! is free to execute it on whatever endpoints it manages.
//!
//! Invariant baked into generation: the plan never drops more endpoints of a
//! class than it has cloned before that point, so executing it in order
//! cannot close the channel early by itself — the *final* close always races
//! the scenario's own shutdown, which is the window under test.

use wcq_harness::DetRng;

/// One churn action, stamped with its intended execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Clone one more sender endpoint into the churn pool.
    CloneSender {
        /// Intended execution time, nanoseconds from the scenario epoch.
        at_ns: u64,
    },
    /// Drop one sender endpoint from the churn pool (a disconnect).
    DropSender {
        /// Intended execution time, nanoseconds from the scenario epoch.
        at_ns: u64,
    },
    /// Clone one more receiver endpoint into the churn pool.
    CloneReceiver {
        /// Intended execution time, nanoseconds from the scenario epoch.
        at_ns: u64,
    },
    /// Drop one receiver endpoint from the churn pool.
    DropReceiver {
        /// Intended execution time, nanoseconds from the scenario epoch.
        at_ns: u64,
    },
}

impl ChurnEvent {
    /// The event's intended execution time (ns from the scenario epoch).
    pub fn at_ns(&self) -> u64 {
        match *self {
            ChurnEvent::CloneSender { at_ns }
            | ChurnEvent::DropSender { at_ns }
            | ChurnEvent::CloneReceiver { at_ns }
            | ChurnEvent::DropReceiver { at_ns } => at_ns,
        }
    }
}

/// A deterministic churn storm: time-sorted events over a fixed window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnPlan {
    /// The events, nondecreasing in [`ChurnEvent::at_ns`].
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Draws a plan of `events` actions spread uniformly over
    /// `window_ns` of virtual time from `seed`.  Same `(seed, window_ns,
    /// events)` → the same plan, byte for byte.
    pub fn from_seed(seed: u64, window_ns: u64, events: usize) -> Self {
        let mut rng = DetRng::new(seed);
        let mut times: Vec<u64> = (0..events)
            .map(|_| rng.next_below(window_ns.max(1)))
            .collect();
        times.sort_unstable();
        // Walk the sorted times assigning kinds, keeping each class's pool
        // balance nonnegative so a drop never outruns its clone.
        let mut senders_pooled = 0u32;
        let mut receivers_pooled = 0u32;
        let events = times
            .into_iter()
            .map(|at_ns| {
                let receiver_side = rng.chance(0.3);
                if receiver_side {
                    if receivers_pooled > 0 && rng.chance(0.5) {
                        receivers_pooled -= 1;
                        ChurnEvent::DropReceiver { at_ns }
                    } else {
                        receivers_pooled += 1;
                        ChurnEvent::CloneReceiver { at_ns }
                    }
                } else if senders_pooled > 0 && rng.chance(0.5) {
                    senders_pooled -= 1;
                    ChurnEvent::DropSender { at_ns }
                } else {
                    senders_pooled += 1;
                    ChurnEvent::CloneSender { at_ns }
                }
            })
            .collect();
        Self { events }
    }

    /// Net endpoints of each class still pooled after the whole plan runs:
    /// `(senders, receivers)`.  The scenario driver drops these leftovers at
    /// shutdown — that final drop racing the frontends' own close is the
    /// window the plan exists to stress.
    pub fn leftover(&self) -> (usize, usize) {
        let mut senders = 0usize;
        let mut receivers = 0usize;
        for e in &self.events {
            match e {
                ChurnEvent::CloneSender { .. } => senders += 1,
                ChurnEvent::DropSender { .. } => senders -= 1,
                ChurnEvent::CloneReceiver { .. } => receivers += 1,
                ChurnEvent::DropReceiver { .. } => receivers -= 1,
            }
        }
        (senders, receivers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_byte_for_byte() {
        let a = ChurnPlan::from_seed(99, 50_000_000, 400);
        let b = ChurnPlan::from_seed(99, 50_000_000, 400);
        assert_eq!(a, b);
        // `Debug` is the byte-level contract the replay test quotes.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = ChurnPlan::from_seed(100, 50_000_000, 400);
        assert_ne!(a, c);
    }

    #[test]
    fn plans_are_time_sorted() {
        let p = ChurnPlan::from_seed(5, 10_000_000, 500);
        assert!(p.events.windows(2).all(|w| w[0].at_ns() <= w[1].at_ns()));
    }

    #[test]
    fn drops_never_outrun_clones() {
        let p = ChurnPlan::from_seed(77, 10_000_000, 1_000);
        let mut senders = 0i64;
        let mut receivers = 0i64;
        for e in &p.events {
            match e {
                ChurnEvent::CloneSender { .. } => senders += 1,
                ChurnEvent::DropSender { .. } => senders -= 1,
                ChurnEvent::CloneReceiver { .. } => receivers += 1,
                ChurnEvent::DropReceiver { .. } => receivers -= 1,
            }
            assert!(senders >= 0, "sender pool went negative");
            assert!(receivers >= 0, "receiver pool went negative");
        }
        let (ls, lr) = p.leftover();
        assert_eq!((ls as i64, lr as i64), (senders, receivers));
    }

    #[test]
    fn plans_exercise_all_four_event_kinds() {
        let p = ChurnPlan::from_seed(3, 10_000_000, 1_000);
        let has = |f: fn(&ChurnEvent) -> bool| p.events.iter().any(f);
        assert!(has(|e| matches!(e, ChurnEvent::CloneSender { .. })));
        assert!(has(|e| matches!(e, ChurnEvent::DropSender { .. })));
        assert!(has(|e| matches!(e, ChurnEvent::CloneReceiver { .. })));
        assert!(has(|e| matches!(e, ChurnEvent::DropReceiver { .. })));
    }
}
